use perseus_core::FrontierOptions;
use perseus_gpu::{FreqMHz, GpuSpec};
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;

use crate::emulator::{ClusterConfig, Emulator, Policy, StragglerCause};

fn small_config() -> ClusterConfig {
    ClusterConfig {
        model: zoo::bert_base(8),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 6,
        n_pipelines: 4,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions {
            tau_s: Some(2e-3),
            max_iters: 50_000,
            stretch: true,
            warm_start: true,
        },
    }
}

#[test]
fn emulator_builds_and_frontier_is_sane() {
    let emu = Emulator::new(small_config()).unwrap();
    assert!(emu.frontier().t_min() < emu.frontier().t_star());
    assert_eq!(emu.stages().len(), 4);
    assert_eq!(emu.config().n_gpus(), 16);
}

#[test]
fn perseus_saves_without_straggler() {
    let emu = Emulator::new(small_config()).unwrap();
    let s = emu.savings(Policy::Perseus, None).unwrap();
    assert!(
        s.savings_pct > 1.0,
        "intrinsic savings expected: {:.2}%",
        s.savings_pct
    );
    assert!(
        s.slowdown_pct < 1.0,
        "negligible slowdown expected: {:.2}%",
        s.slowdown_pct
    );
}

#[test]
fn perseus_saves_more_with_straggler() {
    // Table 4 shape: extrinsic slack adds savings on top of intrinsic.
    let emu = Emulator::new(small_config()).unwrap();
    let intrinsic = emu.savings(Policy::Perseus, None).unwrap().savings_pct;
    let with_straggler = emu.savings(Policy::Perseus, Some(1.2)).unwrap().savings_pct;
    assert!(
        with_straggler > intrinsic,
        "straggler slack should add savings: {with_straggler:.2}% vs {intrinsic:.2}%"
    );
}

#[test]
fn savings_wane_beyond_t_star() {
    // §6.2.2: past T* the pipeline stops slowing down, and the growing
    // blocking denominator erodes the percentage.
    let emu = Emulator::new(small_config()).unwrap();
    let t_star_over_t = emu.frontier().t_star() / emu.frontier().t_min();
    let at_star = emu
        .savings(Policy::Perseus, Some(t_star_over_t))
        .unwrap()
        .savings_pct;
    let far = emu
        .savings(Policy::Perseus, Some(t_star_over_t * 2.0))
        .unwrap()
        .savings_pct;
    assert!(
        far < at_star,
        "savings should wane past T*: {far:.2}% vs {at_star:.2}%"
    );
}

#[test]
fn perseus_beats_envpipe_under_stragglers() {
    // Figure 7: EnvPipe has no frontier, so it cannot harvest extrinsic
    // bloat.
    let emu = Emulator::new(small_config()).unwrap();
    let p = emu.savings(Policy::Perseus, Some(1.2)).unwrap().savings_pct;
    let e = emu.savings(Policy::EnvPipe, Some(1.2)).unwrap().savings_pct;
    assert!(
        p > e,
        "Perseus {p:.2}% should beat EnvPipe {e:.2}% with stragglers"
    );
}

#[test]
fn zeus_global_saves_less_than_perseus() {
    let emu = Emulator::new(small_config()).unwrap();
    let p = emu
        .savings(Policy::Perseus, Some(1.15))
        .unwrap()
        .savings_pct;
    let z = emu
        .savings(Policy::ZeusGlobal, Some(1.15))
        .unwrap()
        .savings_pct;
    assert!(p >= z - 0.5, "Perseus {p:.2}% vs ZeusGlobal {z:.2}%");
}

#[test]
fn zeus_global_respects_deadline() {
    let emu = Emulator::new(small_config()).unwrap();
    let report = emu
        .report(
            Policy::ZeusGlobal,
            Some(StragglerCause::Slowdown { degree: 1.3 }),
        )
        .unwrap();
    assert!(report.non_straggler.iter_time_s <= report.sync_time_s + 1e-9);
}

#[test]
fn straggler_causes_produce_consistent_times() {
    let emu = Emulator::new(small_config()).unwrap();
    let base = emu
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    // Generic slowdown.
    let t = emu
        .straggler_iteration_time(StragglerCause::Slowdown { degree: 1.25 })
        .unwrap();
    assert!((t - base * 1.25).abs() < 1e-9);
    // Thermal throttle at a deep cap slows the pipeline.
    let t = emu
        .straggler_iteration_time(StragglerCause::ThermalThrottle {
            freq_cap: FreqMHz(705),
        })
        .unwrap();
    assert!(
        t > base * 1.1,
        "705 MHz cap should slow well past baseline: {t} vs {base}"
    );
    // I/O stalls inflate the iteration.
    let t = emu
        .straggler_iteration_time(StragglerCause::IoStall { stall_s: 0.01 })
        .unwrap();
    assert!(t > base);
    // Degenerate degree rejected.
    assert!(emu
        .straggler_iteration_time(StragglerCause::Slowdown { degree: 0.5 })
        .is_err());
}

#[test]
fn cluster_totals_scale_with_pipelines_and_tp() {
    let mut cfg = small_config();
    cfg.n_pipelines = 8;
    cfg.tensor_parallel = 2;
    let emu = Emulator::new(cfg).unwrap();
    let report = emu.report(Policy::AllMax, None).unwrap();
    let one = report.non_straggler.total_j();
    assert!((report.total_j() - one * 8.0 * 2.0).abs() / report.total_j() < 1e-9);
    assert!(report.avg_power_w() > 0.0);
}

#[test]
fn straggler_report_includes_straggler_pipeline() {
    let emu = Emulator::new(small_config()).unwrap();
    let report = emu
        .report(
            Policy::Perseus,
            Some(StragglerCause::Slowdown { degree: 1.2 }),
        )
        .unwrap();
    let s = report.straggler.as_ref().expect("straggler present");
    assert!(s.sync_time_s >= report.non_straggler.iter_time_s);
    // Cluster total counts D-1 non-stragglers plus the straggler.
    let manual = (3.0 * report.non_straggler.total_j() + s.total_j()) * 1.0;
    assert!((report.total_j() - manual).abs() / manual < 1e-9);
}

#[test]
fn tensor_parallel_divides_per_gpu_work() {
    let mut cfg = small_config();
    cfg.tensor_parallel = 4;
    let tp = Emulator::new(cfg).unwrap();
    let solo = Emulator::new(small_config()).unwrap();
    // Per-pipeline iteration time shrinks roughly 4x under TP-4.
    let t_tp = tp
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    let t_solo = solo
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    assert!(
        t_tp < t_solo * 0.5,
        "TP should shrink iteration time: {t_tp} vs {t_solo}"
    );
}

#[test]
fn fewer_microbatches_more_intrinsic_savings() {
    // Table 6 trend: more microbatches dilute warmup/flush savings. The
    // trend is a statement about (near-)balanced pipelines — the paper's
    // 175B/176B emulation — so use a balanced synthetic model that
    // isolates the warmup/flush mechanism (imbalanced small models trade
    // the other way, because steady-state slack savings grow with M).
    let balanced = perseus_models::ModelSpec {
        name: "balanced-16".into(),
        params_b: 1.0,
        microbatch: 4,
        layers: (0..16)
            .map(|i| perseus_models::LayerCost {
                name: format!("layer.{i}"),
                kind: perseus_models::LayerKind::TransformerDecoder,
                fwd_tflops: 5.0e12,
                bwd_tflops: 1.0e13,
                fwd_mem_frac: 0.1,
                bwd_mem_frac: 0.12,
                fwd_util: 0.85,
                bwd_util: 0.92,
            })
            .collect(),
    };
    let mut few = small_config();
    few.model = balanced.clone();
    few.n_microbatches = 4;
    let mut many = small_config();
    many.model = balanced;
    many.n_microbatches = 16;
    let s_few = Emulator::new(few)
        .unwrap()
        .savings(Policy::Perseus, None)
        .unwrap()
        .savings_pct;
    let s_many = Emulator::new(many)
        .unwrap()
        .savings(Policy::Perseus, None)
        .unwrap()
        .savings_pct;
    assert!(
        s_few > s_many,
        "fewer microbatches should save more: {s_few:.2}% vs {s_many:.2}%"
    );
}

#[test]
fn interleaved_schedule_characterizes_and_saves() {
    // §4.4: any DAG-expressible schedule works; interleaving still leaves
    // intrinsic bloat whenever virtual stages are imbalanced.
    let mut cfg = small_config();
    cfg.schedule = ScheduleKind::Interleaved1F1B { chunks: 2 };
    cfg.n_microbatches = 8; // must divide by n_stages
    let emu = Emulator::new(cfg).unwrap();
    assert_eq!(
        emu.stages().len(),
        8,
        "4 stages x 2 chunks of virtual-stage workloads"
    );
    let s = emu.savings(Policy::Perseus, None).unwrap();
    assert!(
        s.savings_pct > 1.0,
        "interleaved savings: {:.2}%",
        s.savings_pct
    );
    assert!(s.slowdown_pct < 1.0);
}

#[test]
fn interleaving_shortens_iteration_at_same_work() {
    let mut plain = small_config();
    plain.n_microbatches = 8;
    let mut inter = plain.clone();
    inter.schedule = ScheduleKind::Interleaved1F1B { chunks: 2 };
    let t_plain = Emulator::new(plain)
        .unwrap()
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    let t_inter = Emulator::new(inter)
        .unwrap()
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    assert!(
        t_inter < t_plain,
        "interleaving should shrink the bubble: {t_inter} vs {t_plain}"
    );
}

mod run_simulation {
    use super::*;
    use crate::run::{simulate_run, thermal_cycle_trace, RunConfig, TraceEvent};

    #[test]
    fn steady_state_run_matches_per_iteration_report() {
        let emu = Emulator::new(small_config()).unwrap();
        let cfg = RunConfig {
            iterations: 5,
            reaction_delay_iters: 0,
        };
        let summary = simulate_run(&emu, Policy::Perseus, &[], &cfg).unwrap();
        assert_eq!(summary.per_iteration.len(), 5);
        let single = emu.report(Policy::Perseus, None).unwrap();
        let expected = single.total_j() * 5.0;
        assert!((summary.total_energy_j - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn straggler_trace_changes_energy_and_recovers() {
        let emu = Emulator::new(small_config()).unwrap();
        let trace = vec![
            TraceEvent {
                at_iteration: 2,
                pipeline: 1,
                cause: Some(StragglerCause::Slowdown { degree: 1.3 }),
            },
            TraceEvent {
                at_iteration: 4,
                pipeline: 1,
                cause: None,
            },
        ];
        let cfg = RunConfig {
            iterations: 6,
            reaction_delay_iters: 0,
        };
        let s = simulate_run(&emu, Policy::Perseus, &trace, &cfg).unwrap();
        // Iterations 0-1 fast, 2-3 straggling, 4-5 fast again.
        assert!(s.per_iteration[0].actual_t_prime_s.is_none());
        assert!(s.per_iteration[2].actual_t_prime_s.is_some());
        assert!(s.per_iteration[5].actual_t_prime_s.is_none());
        assert!(s.per_iteration[2].sync_time_s > s.per_iteration[0].sync_time_s);
        assert!(
            (s.per_iteration[5].sync_time_s - s.per_iteration[0].sync_time_s).abs() < 1e-9,
            "recovery restores the fast iteration"
        );
    }

    #[test]
    fn reaction_latency_costs_energy_or_time() {
        // With a delayed reaction, the schedule rides stale information:
        // total energy (or time) must be no better than instant reaction.
        let emu = Emulator::new(small_config()).unwrap();
        let trace = thermal_cycle_trace(0, 1.25, 6, 3, 18);
        let instant = simulate_run(
            &emu,
            Policy::Perseus,
            &trace,
            &RunConfig {
                iterations: 18,
                reaction_delay_iters: 0,
            },
        )
        .unwrap();
        let delayed = simulate_run(
            &emu,
            Policy::Perseus,
            &trace,
            &RunConfig {
                iterations: 18,
                reaction_delay_iters: 2,
            },
        )
        .unwrap();
        assert!(
            delayed.total_energy_j >= instant.total_energy_j - 1e-6
                || delayed.total_time_s >= instant.total_time_s - 1e-6,
            "stale reactions cannot beat instant ones"
        );
        // Stale slow schedules make the non-straggler the new straggler.
        assert!(delayed.total_time_s >= instant.total_time_s - 1e-9);
    }

    #[test]
    fn perseus_beats_allmax_over_a_noisy_segment() {
        let emu = Emulator::new(small_config()).unwrap();
        let trace = thermal_cycle_trace(2, 1.2, 5, 2, 20);
        let cfg = RunConfig {
            iterations: 20,
            reaction_delay_iters: 1,
        };
        let perseus = simulate_run(&emu, Policy::Perseus, &trace, &cfg).unwrap();
        let allmax = simulate_run(&emu, Policy::AllMax, &trace, &cfg).unwrap();
        assert!(perseus.total_energy_j < allmax.total_energy_j);
        // Stale slow schedules right after each recovery cost some time;
        // with a 1-iteration delay and ~40% straggler duty that stays in
        // the mid single digits.
        assert!(perseus.total_time_s <= allmax.total_time_s * 1.06);
        assert!(perseus.avg_power_w() < allmax.avg_power_w());
        // Instant reaction removes the time cost entirely.
        let instant = simulate_run(
            &emu,
            Policy::Perseus,
            &trace,
            &RunConfig {
                iterations: 20,
                reaction_delay_iters: 0,
            },
        )
        .unwrap();
        let allmax_instant = simulate_run(
            &emu,
            Policy::AllMax,
            &trace,
            &RunConfig {
                iterations: 20,
                reaction_delay_iters: 0,
            },
        )
        .unwrap();
        assert!(instant.total_time_s <= allmax_instant.total_time_s * 1.002);
    }
}

#[test]
fn parallel_planner_sweep_matches_sequential() {
    use std::sync::Arc;

    use perseus_core::parallel::parallel_map;
    use perseus_core::{EnergySchedule, PlanOutput, Planner};

    fn schedule_bits(s: &EnergySchedule, out: &mut Vec<u64>) {
        out.push(s.time_s.to_bits());
        out.push(s.compute_j.to_bits());
        for v in s
            .planned
            .iter()
            .chain(&s.realized_dur)
            .chain(&s.realized_energy)
        {
            out.push(v.to_bits());
        }
        for f in &s.freqs {
            out.push(f.map_or(u64::MAX, |f| u64::from(f.0)));
        }
    }

    // Every f64 and frequency a plan carries, as exact bits — any
    // nondeterminism in the parallel path shows up as a fingerprint
    // mismatch, not a tolerance question.
    fn fingerprint(p: &PlanOutput) -> Vec<u64> {
        let mut bits = Vec::new();
        match p {
            PlanOutput::Schedule(s) => {
                bits.push(1);
                schedule_bits(s, &mut bits);
            }
            PlanOutput::Frontier(f) => {
                bits.push(2);
                for pt in f.points() {
                    bits.push(pt.planned_time_s.to_bits());
                    bits.push(pt.planned_energy_j.to_bits());
                    schedule_bits(&pt.schedule, &mut bits);
                }
            }
            PlanOutput::Sweep {
                schedules,
                no_straggler_deadline_s,
            } => {
                bits.push(3);
                bits.push(no_straggler_deadline_s.to_bits());
                for s in schedules {
                    schedule_bits(s, &mut bits);
                }
            }
            PlanOutput::SleepFrontier {
                frontier, sleep, ..
            } => {
                bits.push(4);
                for pt in frontier.points() {
                    bits.push(pt.planned_time_s.to_bits());
                    bits.push(pt.planned_energy_j.to_bits());
                    schedule_bits(&pt.schedule, &mut bits);
                }
                for plan in sleep {
                    for stage in &plan.per_stage {
                        bits.push(stage.len() as u64);
                        for w in stage {
                            bits.push(w.start_s.to_bits());
                            bits.push(w.end_s.to_bits());
                            bits.push(w.state_power_w.to_bits());
                        }
                    }
                }
            }
        }
        bits
    }

    let emu = Emulator::new(small_config()).unwrap();
    let ctx = emu.ctx();
    let planners: Vec<(&'static str, Arc<dyn Planner>)> = emu.planners().iter().collect();
    assert_eq!(
        planners.len(),
        7,
        "Perseus, Kareus, and the five baselines: {:?}",
        emu.planners().names()
    );
    let sequential: Vec<Vec<u64>> = planners
        .iter()
        .map(|(_, p)| fingerprint(&p.plan(&ctx).unwrap()))
        .collect();
    let parallel: Vec<Vec<u64>> =
        parallel_map(&planners, |(_, p)| fingerprint(&p.plan(&ctx).unwrap()));
    for (((name, _), seq), par) in planners.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(seq, par, "planner {name} diverges under parallel execution");
    }
}

#[test]
fn thermal_throttle_time_monotone_in_cap_depth() {
    let emu = Emulator::new(small_config()).unwrap();
    let t_deep = emu
        .straggler_iteration_time(StragglerCause::ThermalThrottle {
            freq_cap: FreqMHz(600),
        })
        .unwrap();
    let t_mild = emu
        .straggler_iteration_time(StragglerCause::ThermalThrottle {
            freq_cap: FreqMHz(1200),
        })
        .unwrap();
    assert!(
        t_deep > t_mild,
        "deeper caps slow more: {t_deep} vs {t_mild}"
    );
    // A cap at or above max frequency is a no-op.
    let base = emu
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    let t_none = emu
        .straggler_iteration_time(StragglerCause::ThermalThrottle {
            freq_cap: FreqMHz(1410),
        })
        .unwrap();
    assert!((t_none - base).abs() < 1e-9);
}

#[test]
fn zeus_global_does_not_slow_without_straggler() {
    let emu = Emulator::new(small_config()).unwrap();
    let base = emu
        .report(Policy::AllMax, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    let z = emu
        .report(Policy::ZeusGlobal, None)
        .unwrap()
        .non_straggler
        .iter_time_s;
    assert!(
        z <= base * 1.001,
        "ZeusGlobal must hold throughput absent stragglers: {z} vs {base}"
    );
}

#[test]
fn attribution_total_matches_report_total() {
    // The attribution twin uses exactly the report's arithmetic, so the
    // three-way split sums back to the scalar the report produces — for
    // every policy, with and without a straggler.
    let emu = Emulator::new(small_config()).unwrap();
    for policy in [Policy::AllMax, Policy::Perseus, Policy::ZeusGlobal] {
        for cause in [
            None,
            Some(StragglerCause::Slowdown { degree: 1.25 }),
            Some(StragglerCause::ThermalThrottle {
                freq_cap: FreqMHz(900),
            }),
        ] {
            let report = emu.report(policy, cause).unwrap();
            let attr = emu.attribute(policy, cause).unwrap();
            let total = report.total_j();
            assert!(
                (attr.total().total_j() - total).abs() <= 1e-9 * total,
                "{policy} {cause:?}: attributed {} vs report {}",
                attr.total().total_j(),
                total
            );
            if cause.is_some() {
                assert!(
                    attr.non_straggler.total.extrinsic_j > 0.0,
                    "{policy} {cause:?}: straggler wait must appear as extrinsic bloat"
                );
            }
        }
    }
}

#[test]
fn attribution_with_belief_matches_report_with_belief() {
    let emu = Emulator::new(small_config()).unwrap();
    let t = emu
        .straggler_iteration_time(StragglerCause::Slowdown { degree: 1.3 })
        .unwrap();
    for (believed, actual) in [
        (None, Some(t)),
        (Some(t), Some(t)),
        (Some(t), None),
        (None, None),
    ] {
        let report = emu
            .report_with_belief(Policy::Perseus, believed, actual)
            .unwrap();
        let attr = emu
            .attribute_with_belief(Policy::Perseus, believed, actual)
            .unwrap();
        let total = report.total_j();
        assert!(
            (attr.total().total_j() - total).abs() <= 1e-9 * total.max(1.0),
            "belief {believed:?}/{actual:?}: attributed {} vs report {}",
            attr.total().total_j(),
            total
        );
    }
}

#[test]
fn simulate_run_with_ledger_is_observation_only() {
    use crate::run::{simulate_run, simulate_run_with_ledger, thermal_cycle_trace, RunConfig};
    use perseus_core::BloatLedger;

    let emu = Emulator::new(small_config()).unwrap();
    let trace = thermal_cycle_trace(1, 1.3, 8, 3, 24);
    let cfg = RunConfig {
        iterations: 24,
        reaction_delay_iters: 2,
    };
    let plain = simulate_run(&emu, Policy::Perseus, &trace, &cfg).unwrap();
    let mut ledger = BloatLedger::new(4);
    let with = simulate_run_with_ledger(&emu, Policy::Perseus, &trace, &cfg, &mut ledger).unwrap();
    // Bit-identical summary: the ledger observed, it did not interfere.
    assert_eq!(
        plain.total_energy_j.to_bits(),
        with.total_energy_j.to_bits()
    );
    assert_eq!(plain.total_time_s.to_bits(), with.total_time_s.to_bits());
    // And the ledger accounted every joule of the run.
    assert_eq!(ledger.iterations(), 24);
    assert!(
        (ledger.total().total_j() - plain.total_energy_j).abs() <= 1e-9 * plain.total_energy_j,
        "ledger {} vs run {}",
        ledger.total().total_j(),
        plain.total_energy_j
    );
    // The thermal cycle produced both bloat flavors.
    assert!(ledger.total().intrinsic_j > 0.0);
    assert!(ledger.total().extrinsic_j > 0.0);
}

/// The fleet plan cache's core promise, checked across every registered
/// planner: a cache-hit `PlanOutput` is **bitwise identical** to a fresh
/// solve of the same structure — caching can never change what deploys.
#[test]
fn cache_hit_plan_output_is_bitwise_identical_for_every_planner() {
    use perseus_core::{plan_fingerprint, PlanCache};
    use perseus_store::Persist;

    let emu = Emulator::new(small_config()).unwrap();
    let ctx = emu.ctx();
    let opts = &emu.config().frontier;
    let cache = PlanCache::new();
    let mut fps = Vec::new();

    let names: Vec<_> = emu.planners().names();
    assert_eq!(names.len(), 7, "expected perseus + kareus + five baselines");
    for (name, planner) in emu.planners().iter() {
        let fp = plan_fingerprint(name, emu.pipe(), &emu.config().gpu, &ctx.profiles, opts);
        assert!(
            cache.get(fp).is_none(),
            "{name}: fingerprint collided with another planner's entry"
        );
        let cold = planner.plan(&ctx).unwrap();
        cache.insert(fp, cold.clone());
        let hit = cache.get(fp).expect("just-inserted plan must hit");
        assert_eq!(
            cold.to_bytes(),
            hit.to_bytes(),
            "{name}: cached plan differs from the plan that was inserted"
        );
        // Differential: re-plan from scratch; the cached bytes must match
        // the fresh solve exactly, float for float.
        let fresh = planner.plan(&ctx).unwrap();
        assert_eq!(
            fresh.to_bytes(),
            hit.to_bytes(),
            "{name}: cache hit diverges from a fresh solve"
        );
        fps.push(fp);
    }
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(
        fps.len(),
        7,
        "planner fingerprints must be pairwise distinct"
    );
    assert_eq!(cache.stats().entries, 7);
}

mod kareus {
    use super::*;
    use std::sync::Arc;

    use perseus_core::{EnergyKind, KareusPlanner, PlannerCapabilities};

    #[test]
    fn kareus_never_exceeds_perseus_and_wins_on_bubbles() {
        let emu = Emulator::new(small_config()).unwrap();
        for cause in [
            None,
            Some(StragglerCause::Slowdown { degree: 1.2 }),
            Some(StragglerCause::Slowdown { degree: 1.4 }),
        ] {
            let perseus = emu.report(Policy::Perseus, cause).unwrap();
            let kareus = emu.report(Policy::Kareus, cause).unwrap();
            assert!(
                kareus.total_j() <= perseus.total_j() + 1e-9,
                "kareus burned more than perseus under {cause:?}"
            );
            // Deployed schedules are identical — sleep never slows the
            // pipeline.
            assert_eq!(
                kareus.non_straggler.iter_time_s.to_bits(),
                perseus.non_straggler.iter_time_s.to_bits()
            );
        }
        // A 4-stage 6-microbatch 1F1B pipeline has warm-up/drain bubbles
        // well past the default entry/exit latencies: strict win.
        let perseus = emu.report(Policy::Perseus, None).unwrap();
        let kareus = emu.report(Policy::Kareus, None).unwrap();
        assert!(
            kareus.total_j() < perseus.total_j(),
            "bubbly pipeline must sleep profitably: {} vs {}",
            kareus.total_j(),
            perseus.total_j()
        );
    }

    #[test]
    fn kareus_attribution_moves_idle_into_static_sleep() {
        let emu = Emulator::new(small_config()).unwrap();
        let perseus = emu.attribute(Policy::Perseus, None).unwrap();
        let kareus = emu.attribute(Policy::Kareus, None).unwrap();
        let p_idle = perseus.non_straggler.kind(EnergyKind::Idle).useful_j;
        let k_idle = kareus.non_straggler.kind(EnergyKind::Idle).useful_j;
        let k_sleep = kareus.non_straggler.kind(EnergyKind::StaticSleep).useful_j;
        assert_eq!(
            perseus.non_straggler.kind(EnergyKind::StaticSleep).useful_j,
            0.0,
            "frequency-only planner must never book static-sleep joules"
        );
        assert!(k_sleep > 0.0, "kareus must book static-sleep joules");
        assert!(k_idle < p_idle, "sleep must come out of the idle lane");
        // Attribution total tracks the report total (conservation holds
        // through the cluster path too).
        let report = emu.report(Policy::Kareus, None).unwrap();
        let attributed = kareus.total().total_j();
        assert!(
            (attributed - report.total_j()).abs() <= 1e-9 * report.total_j(),
            "attributed {attributed} vs reported {}",
            report.total_j()
        );
    }

    #[test]
    fn unamortizable_kareus_is_bit_identical_to_perseus() {
        use perseus_gpu::{PowerState, PowerStateModel};

        let mut emu = Emulator::new(small_config()).unwrap();
        // Replace the registry's Kareus with one whose only state can
        // never amortize inside a sub-second iteration.
        emu.register_planner(Arc::new(KareusPlanner::new(
            emu.config().frontier.clone(),
            PowerStateModel {
                states: vec![PowerState {
                    name: "glacial",
                    power_w: 1.0,
                    entry_s: 1e6,
                    exit_s: 1e6,
                }],
            },
        )));
        for cause in [None, Some(StragglerCause::Slowdown { degree: 1.3 })] {
            let perseus = emu.report(Policy::Perseus, cause).unwrap();
            let kareus = emu.report(Policy::Kareus, cause).unwrap();
            assert_eq!(
                kareus.total_j().to_bits(),
                perseus.total_j().to_bits(),
                "no profitable bubble: kareus must degenerate exactly"
            );
        }
    }

    #[test]
    fn freq_cap_reclamps_and_recomputes_sleep() {
        let mut emu = Emulator::new(small_config()).unwrap();
        // Prime the cache so the cap path re-clamps a cached SleepFrontier.
        let before = emu.report(Policy::Kareus, None).unwrap();
        let cap = FreqMHz(800);
        emu.apply_freq_cap(cap).unwrap();
        let after_k = emu.report(Policy::Kareus, None).unwrap();
        let after_p = emu.report(Policy::Perseus, None).unwrap();
        // The cap slows the pipeline; the joint plan still dominates.
        assert!(after_k.non_straggler.iter_time_s >= before.non_straggler.iter_time_s);
        assert!(after_k.total_j() <= after_p.total_j() + 1e-9);
        // Sleep windows were recomputed against the capped timeline, not
        // carried over: they still fit inside the capped iteration.
        let plan = emu.plan_of(Policy::Kareus).unwrap();
        let sleep = plan.sleep_plan(None).expect("kareus carries sleep");
        let iter = plan.select(None).time_s;
        for stage in 0..emu.config().n_stages {
            for w in sleep.stage_windows(stage) {
                assert!(w.end_s <= iter + 1e-9, "stale window past capped makespan");
            }
        }
        assert!(sleep.window_count() > 0, "capped bubbles remain sleepable");
    }

    #[test]
    fn registry_capabilities_replace_name_matching() {
        let emu = Emulator::new(small_config()).unwrap();
        for (name, planner) in emu.planners().iter() {
            let caps = planner.capabilities();
            if name == "kareus" {
                assert!(caps.emits_sleep_plan);
            } else {
                assert_eq!(caps, PlannerCapabilities::default());
            }
            // Capability and output agree: only sleep-capable planners
            // produce outputs whose sleep_plan is Some.
            let plan = planner.plan(&emu.ctx()).unwrap();
            assert_eq!(caps.emits_sleep_plan, plan.sleep_plan(None).is_some());
        }
    }

    #[test]
    fn simulate_run_books_static_sleep_for_kareus_only() {
        use crate::run::{simulate_run_with_ledger, thermal_cycle_trace, RunConfig};
        use perseus_core::BloatLedger;

        let emu = Emulator::new(small_config()).unwrap();
        let trace = thermal_cycle_trace(1, 1.3, 8, 3, 16);
        let cfg = RunConfig {
            iterations: 16,
            reaction_delay_iters: 2,
        };
        let mut perseus_ledger = BloatLedger::new(4);
        let perseus =
            simulate_run_with_ledger(&emu, Policy::Perseus, &trace, &cfg, &mut perseus_ledger)
                .unwrap();
        let mut kareus_ledger = BloatLedger::new(4);
        let kareus =
            simulate_run_with_ledger(&emu, Policy::Kareus, &trace, &cfg, &mut kareus_ledger)
                .unwrap();
        assert!(kareus.total_energy_j < perseus.total_energy_j);
        assert_eq!(perseus_ledger.kind(EnergyKind::StaticSleep).total_j(), 0.0);
        assert!(kareus_ledger.kind(EnergyKind::StaticSleep).useful_j > 0.0);
        // The ledger still accounts every joule of the kareus run.
        assert!(
            (kareus_ledger.total().total_j() - kareus.total_energy_j).abs()
                <= 1e-9 * kareus.total_energy_j
        );
    }
}

mod observed_run {
    use super::*;
    use crate::run::{
        simulate_run, simulate_run_observed, thermal_cycle_trace, RunConfig, TraceEvent,
    };
    use perseus_telemetry::{pipeline::series, ObsPipeline};

    /// Feeding the streaming pipeline is pure observation: the summary is
    /// bit-identical to the unobserved run, and the pipeline holds one
    /// sample per iteration.
    #[test]
    fn observed_run_is_bit_identical_and_fills_the_store() {
        let emu = Emulator::new(small_config()).unwrap();
        let trace = vec![TraceEvent {
            at_iteration: 3,
            pipeline: 2,
            cause: Some(StragglerCause::Slowdown { degree: 1.2 }),
        }];
        let cfg = RunConfig {
            iterations: 8,
            reaction_delay_iters: 1,
        };
        let plain = simulate_run(&emu, Policy::Perseus, &trace, &cfg).unwrap();
        let obs = ObsPipeline::default();
        let observed = simulate_run_observed(&emu, Policy::Perseus, &trace, &cfg, &obs).unwrap();
        assert_eq!(
            plain.total_energy_j.to_bits(),
            observed.total_energy_j.to_bits()
        );
        assert_eq!(
            plain.total_time_s.to_bits(),
            observed.total_time_s.to_bits()
        );
        assert_eq!(plain.per_iteration.len(), observed.per_iteration.len());
        for (a, b) in plain.per_iteration.iter().zip(&observed.per_iteration) {
            assert_eq!(a.sync_time_s.to_bits(), b.sync_time_s.to_bits());
            assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        }
        assert_eq!(obs.ingested(), 8);
        let energy = obs.window(series::ENERGY_PER_ITERATION_J, 8).unwrap();
        assert_eq!(energy.count, 8);
        assert!((energy.mean * 8.0 - plain.total_energy_j).abs() < 1e-6);
        let sync = obs.window(series::SYNC_TIME_S, 8).unwrap();
        assert!((sync.mean * 8.0 - plain.total_time_s).abs() < 1e-9);
    }

    /// A thermal-cycling trace drives the sync-time series up and down;
    /// the pipeline's window stats see the spread.
    #[test]
    fn observed_thermal_cycle_shows_spread() {
        let emu = Emulator::new(small_config()).unwrap();
        let trace = thermal_cycle_trace(1, 1.3, 8, 4, 32);
        let cfg = RunConfig {
            iterations: 32,
            reaction_delay_iters: 1,
        };
        let obs = ObsPipeline::default();
        simulate_run_observed(&emu, Policy::Perseus, &trace, &cfg, &obs).unwrap();
        let w = obs.window(series::SYNC_TIME_S, 32).unwrap();
        assert!(w.max > w.min, "cycling trace must move the series");
    }
}
