//! Name-indexed planner registry: trait-object dispatch over energy
//! policies.
//!
//! The emulator (and anything else that lets users pick a policy by name)
//! resolves a [`Policy`](crate::Policy) to its [`Planner`] through a
//! registry instead of matching on an enum, so new policies — including
//! ones defined outside this workspace — plug in without touching the
//! dispatch site.

use std::collections::HashMap;
use std::sync::Arc;

use perseus_baselines::{AllMaxFreq, EnvPipe, MinEnergyOracle, ZeusGlobal, ZeusPerStage};
use perseus_core::{FrontierOptions, KareusPlanner, Perseus, Planner};
use perseus_gpu::{GpuSpec, PowerStateModel};

/// A set of named [`Planner`]s behind shared trait objects.
pub struct PlannerRegistry {
    planners: HashMap<&'static str, Arc<dyn Planner>>,
}

impl PlannerRegistry {
    /// An empty registry.
    pub fn empty() -> PlannerRegistry {
        PlannerRegistry {
            planners: HashMap::new(),
        }
    }

    /// A registry holding Perseus and Kareus (with the given
    /// characterization options), plus the five baselines, each under its
    /// [`Planner::name`]. Kareus draws its sleep states from `gpu`'s
    /// default power-state menu
    /// ([`PowerStateModel::default_for`]).
    pub fn with_defaults(frontier: FrontierOptions, gpu: &GpuSpec) -> PlannerRegistry {
        let mut r = PlannerRegistry::empty();
        r.register(Arc::new(Perseus::new(frontier.clone())));
        r.register(Arc::new(KareusPlanner::new(
            frontier,
            PowerStateModel::default_for(gpu),
        )));
        r.register(Arc::new(AllMaxFreq));
        r.register(Arc::new(MinEnergyOracle));
        r.register(Arc::new(EnvPipe::default()));
        r.register(Arc::new(ZeusGlobal));
        r.register(Arc::new(ZeusPerStage));
        r
    }

    /// Registers `planner` under its own name, replacing any previous
    /// planner of that name.
    pub fn register(&mut self, planner: Arc<dyn Planner>) {
        self.planners.insert(planner.name(), planner);
    }

    /// The planner registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Planner>> {
        self.planners.get(name).map(Arc::clone)
    }

    /// Iterates over `(name, planner)` pairs in sorted-name order, so
    /// sweeps over every registered planner are deterministic.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Arc<dyn Planner>)> + '_ {
        let mut entries: Vec<(&'static str, Arc<dyn Planner>)> = self
            .planners
            .iter()
            .map(|(n, p)| (*n, Arc::clone(p)))
            .collect();
        entries.sort_unstable_by_key(|(n, _)| *n);
        entries.into_iter()
    }

    /// Registered planner names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.planners.keys().copied().collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Debug for PlannerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannerRegistry")
            .field("names", &self.names())
            .finish()
    }
}
