//! Strong-scaling configurations (paper Table 5).

/// One row of Table 5: strong scaling holds the global batch size constant
/// while pipelines multiply, so each pipeline sees fewer microbatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingConfig {
    /// Total GPU count.
    pub n_gpus: usize,
    /// Number of data-parallel pipelines.
    pub n_pipelines: usize,
    /// Microbatches per pipeline per iteration.
    pub n_microbatches: usize,
    /// Global batch size (constant across rows).
    pub global_batch: usize,
    /// Tensor parallel degree within a stage.
    pub tensor_parallel: usize,
    /// Pipeline stages.
    pub n_stages: usize,
}

/// The paper's Table 5: 1,024–8,192 GPUs, tensor parallel 8, eight
/// pipeline stages, global batch 1,536.
pub fn strong_scaling_table5() -> Vec<ScalingConfig> {
    [
        (1024, 16, 96),
        (2048, 32, 48),
        (4096, 64, 24),
        (8192, 128, 12),
    ]
    .into_iter()
    .map(|(n_gpus, n_pipelines, n_microbatches)| ScalingConfig {
        n_gpus,
        n_pipelines,
        n_microbatches,
        global_batch: 1536,
        tensor_parallel: 8,
        n_stages: 8,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_is_consistent() {
        for c in strong_scaling_table5() {
            assert_eq!(c.n_gpus, c.n_pipelines * c.tensor_parallel * c.n_stages);
            // Strong scaling: pipelines × microbatches is constant.
            assert_eq!(c.n_pipelines * c.n_microbatches, 1536);
        }
    }
}
