//! Data-parallel cluster emulation (paper §6.3).
//!
//! Large-scale evaluation runs `D` replicas of the same pipeline in a
//! synchronous data-parallel fashion: gradients synchronize at the end of
//! every iteration, so *every* pipeline's effective iteration time is the
//! straggler's `T'`. This crate emulates that setting on top of the
//! profiling-grounded GPU model, reproducing the paper's accounting:
//!
//! * per-pipeline energy via Eq. 3 (computation + blocking + straggler
//!   wait),
//! * policies: all-max (the baseline), Perseus (frontier lookup at
//!   `T_opt = min(T*, T')`), EnvPipe (intrinsic-only), ZeusGlobal (best
//!   global cap fitting the deadline), and the §2.4 min-energy oracle,
//! * straggler injection: thermal/power throttling (frequency cap), I/O
//!   stalls (constant-time inflation), or a generic slowdown degree,
//! * the strong-scaling configurations of Table 5.
//!
//! # Examples
//!
//! ```no_run
//! use perseus_cluster::{ClusterConfig, Emulator, Policy};
//! use perseus_gpu::GpuSpec;
//! use perseus_models::zoo;
//! use perseus_pipeline::ScheduleKind;
//!
//! let config = ClusterConfig {
//!     model: zoo::gpt3_xl(4),
//!     gpu: GpuSpec::a100_pcie(),
//!     n_stages: 4,
//!     n_microbatches: 8,
//!     n_pipelines: 4,
//!     tensor_parallel: 1,
//!     schedule: ScheduleKind::OneFOneB,
//!     frontier: Default::default(),
//! };
//! let emu = Emulator::new(config).unwrap();
//! let savings = emu.savings(Policy::Perseus, Some(1.2)).unwrap();
//! assert!(savings.savings_pct > 0.0);
//! ```

mod emulator;
mod registry;
mod run;
mod scaling;

pub use emulator::{
    ClusterAttribution, ClusterConfig, ClusterReport, Emulator, EmulatorError, Policy, Savings,
    StragglerCause,
};
pub use registry::PlannerRegistry;
pub use run::{
    simulate_run, simulate_run_observed, simulate_run_with_ledger, thermal_cycle_trace,
    IterationRecord, RunConfig, RunSummary, StragglerTimeline, TraceEvent,
};
pub use scaling::{strong_scaling_table5, ScalingConfig};

#[cfg(test)]
mod tests;
