//! The cluster emulator: one pipeline characterized, `D` replicas
//! accounted (§4.4: operator-parallel replicas share one energy schedule,
//! so it suffices to optimize a single data-parallel copy).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use perseus_baselines::AllMaxFreq;
use perseus_core::{
    attribute_schedule, attribute_schedule_with_sleep, BloatLedger, CoreError, EnergyBreakdown,
    FrontierOptions, ParetoFrontier, PipelineEnergy, PlanContext, PlanOutput, Planner,
    ScheduleAttribution,
};
use perseus_gpu::{FreqMHz, GpuSpec};
use perseus_models::{
    min_imbalance_partition, ModelError, ModelSpec, PartitionError, StageWorkloads,
};
use perseus_pipeline::{PipelineBuilder, PipelineDag, ScheduleError, ScheduleKind};
use perseus_telemetry::Telemetry;

use crate::registry::PlannerRegistry;

/// Emulation input: the model, hardware, and parallelization layout.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Model to train (costs per microbatch; tensor parallelism is applied
    /// by the emulator).
    pub model: ModelSpec,
    /// GPU every accelerator in the cluster uses.
    pub gpu: GpuSpec,
    /// Pipeline stages.
    pub n_stages: usize,
    /// Microbatches per pipeline per iteration.
    pub n_microbatches: usize,
    /// Data-parallel pipeline count.
    pub n_pipelines: usize,
    /// Tensor parallel degree (GPUs per stage).
    pub tensor_parallel: usize,
    /// Pipeline schedule.
    pub schedule: ScheduleKind,
    /// Frontier characterization options.
    pub frontier: FrontierOptions,
}

impl ClusterConfig {
    /// Total GPUs: pipelines × stages × tensor parallel degree.
    pub fn n_gpus(&self) -> usize {
        self.n_pipelines * self.n_stages * self.tensor_parallel
    }
}

/// Errors from emulator construction and queries.
#[derive(Debug)]
pub enum EmulatorError {
    /// Stage partitioning failed.
    Partition(PartitionError),
    /// Model/partition mismatch or invalid tensor parallel degree.
    Model(ModelError),
    /// Pipeline construction failed.
    Schedule(ScheduleError),
    /// Frontier characterization failed.
    Core(CoreError),
    /// A straggler degree below 1.0 was requested.
    InvalidDegree(f64),
    /// No planner is registered under the policy's name.
    UnknownPolicy(String),
}

impl fmt::Display for EmulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmulatorError::Partition(e) => write!(f, "partitioning failed: {e}"),
            EmulatorError::Model(e) => write!(f, "model error: {e}"),
            EmulatorError::Schedule(e) => write!(f, "schedule error: {e}"),
            EmulatorError::Core(e) => write!(f, "frontier error: {e}"),
            EmulatorError::InvalidDegree(d) => write!(f, "straggler degree {d} must be >= 1"),
            EmulatorError::UnknownPolicy(name) => write!(f, "no planner registered as {name:?}"),
        }
    }
}

impl std::error::Error for EmulatorError {}

impl From<EmulatorError> for perseus_core::Error {
    fn from(e: EmulatorError) -> Self {
        perseus_core::Error::subsystem("emulator", e)
    }
}

impl From<PartitionError> for EmulatorError {
    fn from(e: PartitionError) -> Self {
        EmulatorError::Partition(e)
    }
}
impl From<ModelError> for EmulatorError {
    fn from(e: ModelError) -> Self {
        EmulatorError::Model(e)
    }
}
impl From<ScheduleError> for EmulatorError {
    fn from(e: ScheduleError) -> Self {
        EmulatorError::Schedule(e)
    }
}
impl From<CoreError> for EmulatorError {
    fn from(e: CoreError) -> Self {
        EmulatorError::Core(e)
    }
}

/// Energy policy applied to the non-straggler pipelines: a planner name
/// resolved through the emulator's [`PlannerRegistry`].
///
/// The well-known policies are associated constants
/// (`Policy::Perseus`, `Policy::AllMax`, …), so existing call sites read
/// exactly as they did when this was an enum; [`Policy::custom`] names a
/// planner registered via [`Emulator::register_planner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    name: &'static str,
}

#[allow(non_upper_case_globals)]
impl Policy {
    /// Every computation at maximum frequency (the baseline).
    pub const AllMax: Policy = Policy {
        name: "all_max_freq",
    };
    /// Perseus: frontier lookup at `T_opt = min(T*, T')`.
    pub const Perseus: Policy = Policy { name: "perseus" };
    /// Kareus: the Perseus frontier with sleep windows inserted into
    /// pipeline bubbles (joint dynamic + static planning).
    pub const Kareus: Policy = Policy { name: "kareus" };
    /// EnvPipe: intrinsic-only heuristic, unaware of stragglers.
    pub const EnvPipe: Policy = Policy { name: "envpipe" };
    /// ZeusGlobal: the lowest-energy global frequency cap whose iteration
    /// time does not exceed `T'`.
    pub const ZeusGlobal: Policy = Policy {
        name: "zeus_global",
    };
    /// ZeusPerStage: per-stage clocks balancing forward times under `T'`.
    pub const ZeusPerStage: Policy = Policy {
        name: "zeus_per_stage",
    };
    /// Every computation at its minimum-energy frequency (§2.4 oracle).
    pub const MinEnergyOracle: Policy = Policy {
        name: "min_energy_oracle",
    };

    /// A policy resolving to the planner registered under `name`.
    pub const fn custom(name: &'static str) -> Policy {
        Policy { name }
    }

    /// The planner name this policy resolves to.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// Root causes behind straggler pipelines (§2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerCause {
    /// Datacenter thermal/power capping pins the pipeline's clocks.
    ThermalThrottle {
        /// Frequency cap imposed on every GPU of the straggler pipeline.
        freq_cap: FreqMHz,
    },
    /// Storage/network input stalls before each first-stage forward.
    IoStall {
        /// Extra seconds per microbatch.
        stall_s: f64,
    },
    /// Generic announced slowdown (e.g. a heterogeneous recovery pipeline).
    Slowdown {
        /// Iteration-time inflation factor, ≥ 1.
        degree: f64,
    },
}

/// Per-pipeline and cluster-level energy summary.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Energy of one non-straggler pipeline (Eq. 3, straggler wait
    /// included).
    pub non_straggler: PipelineEnergy,
    /// Energy of the straggler pipeline, if one exists.
    pub straggler: Option<PipelineEnergy>,
    /// Straggler iteration time everyone synchronizes on.
    pub sync_time_s: f64,
    /// Pipelines in the cluster.
    pub n_pipelines: usize,
    /// GPUs per stage (energy multiplier — §4.4 replicates the schedule
    /// across operator-parallel GPUs).
    pub tensor_parallel: usize,
}

impl ClusterReport {
    /// Total cluster energy for one iteration, joules.
    pub fn total_j(&self) -> f64 {
        let stragglers = usize::from(self.straggler.is_some());
        let non = (self.n_pipelines - stragglers) as f64 * self.non_straggler.total_j();
        let s = self.straggler.as_ref().map_or(0.0, PipelineEnergy::total_j);
        (non + s) * self.tensor_parallel as f64
    }

    /// Average cluster power draw, watts.
    pub fn avg_power_w(&self) -> f64 {
        self.total_j() / self.sync_time_s
    }
}

/// The [`ClusterReport`]'s companion on the attribution side: where every
/// joule of one synchronized cluster iteration went, per pipeline role.
///
/// Produced by [`Emulator::attribute`] with exactly the arithmetic of
/// [`Emulator::report`], so `total().total_j()` equals the report's
/// `total_j()` for the same inputs.
#[derive(Debug, Clone)]
pub struct ClusterAttribution {
    /// Attribution of one non-straggler pipeline.
    pub non_straggler: ScheduleAttribution,
    /// Attribution of the straggler pipeline, if one exists.
    pub straggler: Option<ScheduleAttribution>,
    /// Pipelines in the cluster.
    pub n_pipelines: usize,
    /// GPUs per stage (energy multiplier, as in [`ClusterReport`]).
    pub tensor_parallel: usize,
}

impl ClusterAttribution {
    /// Whole-cluster breakdown for one iteration: non-straggler pipelines
    /// replicated, the straggler added, everything multiplied by the
    /// tensor-parallel degree.
    pub fn total(&self) -> EnergyBreakdown {
        let stragglers = usize::from(self.straggler.is_some());
        let mut sum = self
            .non_straggler
            .total
            .scaled((self.n_pipelines - stragglers) as f64);
        if let Some(s) = &self.straggler {
            sum.accumulate(s.total);
        }
        sum.scaled(self.tensor_parallel as f64)
    }

    /// Records this iteration into `ledger` with the cluster multipliers
    /// applied, and advances the ledger's iteration counter.
    pub fn record_into(&self, ledger: &mut BloatLedger) {
        let tp = self.tensor_parallel as f64;
        let stragglers = usize::from(self.straggler.is_some());
        ledger.record(
            &self.non_straggler,
            (self.n_pipelines - stragglers) as f64 * tp,
        );
        if let Some(s) = &self.straggler {
            ledger.record(s, tp);
        }
        ledger.note_iteration();
    }
}

/// Relative savings of a policy versus the all-max baseline under the same
/// straggler conditions.
#[derive(Debug, Clone, Copy)]
pub struct Savings {
    /// `1 − E_policy / E_allmax`, as a percentage.
    pub savings_pct: f64,
    /// Iteration-time inflation of the policy pipeline versus the all-max
    /// pipeline (no-straggler comparison), as a percentage.
    pub slowdown_pct: f64,
}

/// The emulator: one partitioned, profiled, characterized pipeline.
///
/// Policies dispatch through a [`PlannerRegistry`] (no per-policy match):
/// a [`Policy`] is just a planner name, and each planner's
/// [`PlanOutput`] is computed once and cached — straggler events only
/// re-*select* from the cached output, mirroring how the planning server
/// reacts without replanning.
pub struct Emulator {
    config: ClusterConfig,
    pipe: PipelineDag,
    stages: Vec<StageWorkloads>,
    frontier: ParetoFrontier,
    planners: PlannerRegistry,
    plan_cache: Mutex<HashMap<&'static str, Arc<PlanOutput>>>,
    /// Active datacenter frequency cap, if any; plans computed after the
    /// cap landed are clamped to it so cached and fresh plans agree.
    freq_cap: Option<FreqMHz>,
    telemetry: Telemetry,
}

impl Emulator {
    /// Partitions the model (minimum-imbalance, Appendix B), builds the
    /// pipeline DAG, derives model-grounded profiles, and characterizes
    /// the Pareto frontier.
    ///
    /// # Errors
    ///
    /// Any of the construction stages can fail; see [`EmulatorError`].
    pub fn new(config: ClusterConfig) -> Result<Emulator, EmulatorError> {
        Emulator::with_telemetry(config, Telemetry::disabled())
    }

    /// Like [`Emulator::new`], but subsequent emulation (in particular
    /// [`crate::simulate_run`]) records counters into `telemetry`.
    /// Telemetry never changes any emulation output — it only observes.
    ///
    /// # Errors
    ///
    /// Any of the construction stages can fail; see [`EmulatorError`].
    pub fn with_telemetry(
        config: ClusterConfig,
        telemetry: Telemetry,
    ) -> Result<Emulator, EmulatorError> {
        let model = config.model.with_tensor_parallel(config.tensor_parallel)?;
        let weights = model.fwd_latency_weights(&config.gpu);
        // Interleaved schedules split the model into stages × chunks
        // virtual stages; `stage_workloads` then yields one entry per
        // virtual stage, which is exactly what the planner expects.
        let virtual_stages = config.n_stages * config.schedule.chunks();
        let partition = min_imbalance_partition(&weights, virtual_stages)?;
        let stages = model.stage_workloads(&partition, &config.gpu)?;
        let pipe = PipelineBuilder::new(config.schedule, config.n_stages, config.n_microbatches)
            .build()?;
        let frontier = {
            let ctx = PlanContext::from_model_profiles(&pipe, &config.gpu, &stages)?;
            perseus_core::FrontierSolver::with_telemetry(&pipe, telemetry.clone())
                .characterize(&ctx, &config.frontier)?
        };
        let planners = PlannerRegistry::with_defaults(config.frontier.clone(), &config.gpu);
        // Perseus is planned eagerly (it is the frontier just
        // characterized); baselines plan lazily on first use.
        let plan_cache = Mutex::new(HashMap::from([(
            Policy::Perseus.name(),
            Arc::new(PlanOutput::Frontier(frontier.clone())),
        )]));
        Ok(Emulator {
            config,
            pipe,
            stages,
            frontier,
            planners,
            plan_cache,
            freq_cap: None,
            telemetry,
        })
    }

    /// The telemetry handle emulation records into (disabled unless the
    /// emulator was built with [`Emulator::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Registers `planner` so [`Policy::custom`]`(planner.name())` can
    /// dispatch to it, replacing any planner of the same name (and
    /// dropping that name's cached plan).
    pub fn register_planner(&mut self, planner: Arc<dyn Planner>) {
        self.plan_cache.lock().remove(planner.name());
        self.planners.register(planner);
    }

    /// The planner registry policies resolve through.
    pub fn planners(&self) -> &PlannerRegistry {
        &self.planners
    }

    /// The emulated pipeline DAG.
    pub fn pipe(&self) -> &PipelineDag {
        &self.pipe
    }

    /// Per-stage workloads after partitioning.
    pub fn stages(&self) -> &[StageWorkloads] {
        &self.stages
    }

    /// The characterized frontier of one pipeline.
    pub fn frontier(&self) -> &ParetoFrontier {
        &self.frontier
    }

    /// The configuration this emulator was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Builds a fresh planning context (cheap; profiles are re-fitted).
    pub fn ctx(&self) -> PlanContext<'_> {
        PlanContext::from_model_profiles(&self.pipe, &self.config.gpu, &self.stages)
            .expect("context construction succeeded in new()")
    }

    /// Translates a straggler cause into the straggler's iteration time.
    pub fn straggler_iteration_time(&self, cause: StragglerCause) -> Result<f64, EmulatorError> {
        let ctx = self.ctx();
        let base = self.policy_plan(&ctx, Policy::AllMax)?.select(None).time_s;
        Ok(match cause {
            StragglerCause::Slowdown { degree } => {
                if degree < 1.0 {
                    return Err(EmulatorError::InvalidDegree(degree));
                }
                base * degree
            }
            StragglerCause::ThermalThrottle { freq_cap } => {
                // The straggler's computations all run at the capped clock.
                let cap = self.config.gpu.clamp_freq(freq_cap);
                let mut planned = ctx.fastest_durations();
                for id in self.pipe.dag.node_ids() {
                    if ctx.info(id).is_some() {
                        let profile = ctx.profile_of(id).expect("comp");
                        if let Some(e) = profile.entry_at(cap) {
                            planned[id.index()] = e.time_s;
                        }
                    }
                }
                let (_, t) =
                    perseus_pipeline::node_start_times(&self.pipe.dag, |id, _| planned[id.index()]);
                t.max(base)
            }
            StragglerCause::IoStall { stall_s } => {
                let stalled = PipelineBuilder::new(
                    self.config.schedule,
                    self.config.n_stages,
                    self.config.n_microbatches,
                )
                .with_data_loading(stall_s, self.config.gpu.blocking_w)
                .build()?;
                let ctx2 =
                    PlanContext::from_model_profiles(&stalled, &self.config.gpu, &self.stages)?;
                // Planned fresh, never from the cache: the stalled DAG is a
                // different pipeline than the one the cache describes.
                let t = AllMaxFreq.plan(&ctx2)?.select(None).time_s;
                t.max(base)
            }
        })
    }

    /// The policy's `T'`-independent plan, as [`Emulator::report`] uses
    /// it: from the cache when present, planned through the registry
    /// otherwise. Public so differential tests can compare the cached
    /// artifact against a freshly planned one.
    ///
    /// # Errors
    ///
    /// [`EmulatorError::UnknownPolicy`] for unregistered names;
    /// propagates planning failures.
    pub fn plan_of(&self, policy: Policy) -> Result<Arc<PlanOutput>, EmulatorError> {
        let ctx = self.ctx();
        self.policy_plan(&ctx, policy)
    }

    /// A datacenter frequency cap landed on the cluster (§2.3): frontier
    /// points assigning clocks above `cap` are no longer realizable.
    /// Every cached plan — including the characterized Perseus frontier —
    /// is re-clamped via [`PlanOutput::clamp_freq_cap`] instead of
    /// panicking at deploy time, and the cap is remembered so plans
    /// computed lazily afterwards are clamped the same way. Clamping is
    /// monotone, so repeated caps converge: only the lowest cap matters.
    ///
    /// # Errors
    ///
    /// Propagates re-realization failures.
    pub fn apply_freq_cap(&mut self, cap: FreqMHz) -> Result<(), EmulatorError> {
        let cap = self.config.gpu.clamp_freq(cap);
        if self.freq_cap.is_some_and(|old| old <= cap) {
            return Ok(());
        }
        let clamped_frontier;
        let mut clamped_cache = HashMap::new();
        {
            let ctx = self.ctx();
            clamped_frontier = self.frontier.clamp_to_freq_cap(&ctx, cap)?;
            for (name, plan) in self.plan_cache.lock().iter() {
                clamped_cache.insert(*name, Arc::new(plan.clamp_freq_cap(&ctx, cap)?));
            }
        }
        clamped_cache.insert(
            Policy::Perseus.name(),
            Arc::new(PlanOutput::Frontier(clamped_frontier.clone())),
        );
        self.frontier = clamped_frontier;
        *self.plan_cache.lock() = clamped_cache;
        self.freq_cap = Some(cap);
        Ok(())
    }

    /// The active datacenter frequency cap, if one was applied.
    pub fn freq_cap(&self) -> Option<FreqMHz> {
        self.freq_cap
    }

    /// The policy's `T'`-independent plan, computed through the registry
    /// on first use and cached for the emulator's lifetime (the pipeline
    /// and profiles never change after construction).
    fn policy_plan(
        &self,
        ctx: &PlanContext<'_>,
        policy: Policy,
    ) -> Result<Arc<PlanOutput>, EmulatorError> {
        if let Some(out) = self.plan_cache.lock().get(policy.name()) {
            return Ok(Arc::clone(out));
        }
        let planner = self
            .planners
            .get(policy.name())
            .ok_or_else(|| EmulatorError::UnknownPolicy(policy.name().to_string()))?;
        let mut plan = planner.plan(ctx)?;
        // Plans computed after a cap landed live under that cap too, so
        // cached and lazily planned policies stay consistent.
        if let Some(cap) = self.freq_cap {
            plan = plan.clamp_freq_cap(ctx, cap)?;
        }
        let out = Arc::new(plan);
        self.plan_cache
            .lock()
            .insert(policy.name(), Arc::clone(&out));
        Ok(out)
    }

    /// Emulates one synchronized iteration: non-straggler pipelines run
    /// `policy`, the straggler (if any) runs at max frequency but `cause`
    /// inflates its iteration time, and everyone blocks until it finishes.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction failures.
    pub fn report(
        &self,
        policy: Policy,
        cause: Option<StragglerCause>,
    ) -> Result<ClusterReport, EmulatorError> {
        let ctx = self.ctx();
        let t_prime = match cause {
            Some(c) => Some(self.straggler_iteration_time(c)?),
            None => None,
        };
        let plan = self.policy_plan(&ctx, policy)?;
        // Sleep-capable plans (Kareus) carry a sleep schedule per frontier
        // point; frequency-only plans return `None` and report exactly as
        // before.
        let non_straggler =
            plan.select(t_prime)
                .energy_report_with_sleep(&ctx, t_prime, plan.sleep_plan(t_prime));
        let sync = t_prime
            .unwrap_or(non_straggler.iter_time_s)
            .max(non_straggler.iter_time_s);

        // The straggler itself runs at max frequency; its computations are
        // stretched to fill T' (e.g. throttled clocks), so we charge its
        // max-frequency computation energy plus blocking to fill the gap.
        let straggler = match t_prime {
            Some(t) => {
                let base = self.policy_plan(&ctx, Policy::AllMax)?;
                let mut r = base.select(None).energy_report(&ctx, Some(t));
                r.sync_time_s = t;
                Some(r)
            }
            None => None,
        };
        Ok(ClusterReport {
            non_straggler,
            straggler,
            sync_time_s: sync,
            n_pipelines: self.config.n_pipelines,
            tensor_parallel: self.config.tensor_parallel,
        })
    }

    /// Like [`Emulator::report`], but the deployed schedule answers a
    /// (possibly stale) *believed* straggler iteration time while blocking
    /// is charged against the *actual* one — the accounting needed to
    /// simulate reaction latency over a training segment.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction failures.
    pub fn report_with_belief(
        &self,
        policy: Policy,
        believed_t_prime: Option<f64>,
        actual_t_prime: Option<f64>,
    ) -> Result<ClusterReport, EmulatorError> {
        let ctx = self.ctx();
        let plan = self.policy_plan(&ctx, policy)?;
        let schedule = plan.select(believed_t_prime);
        // If the belief is stale the non-straggler pipeline itself may be
        // the slowest participant.
        let sync = actual_t_prime.unwrap_or(0.0).max(schedule.time_s);
        // The sleep plan follows the *believed* selection — it ships with
        // the deployed schedule; a stale belief never re-plans sleep.
        let non_straggler =
            schedule.energy_report_with_sleep(&ctx, Some(sync), plan.sleep_plan(believed_t_prime));
        let straggler = match actual_t_prime {
            Some(t) => {
                let base = self.policy_plan(&ctx, Policy::AllMax)?;
                let mut r = base.select(None).energy_report(&ctx, Some(sync.max(t)));
                r.sync_time_s = sync.max(t);
                Some(r)
            }
            None => None,
        };
        Ok(ClusterReport {
            non_straggler,
            straggler,
            sync_time_s: sync,
            n_pipelines: self.config.n_pipelines,
            tensor_parallel: self.config.tensor_parallel,
        })
    }

    /// Attributes one synchronized iteration under exactly the conditions
    /// of [`Emulator::report`]: same plan selection, same straggler
    /// arithmetic, but every pipeline's energy split into useful /
    /// intrinsic / extrinsic joules. Observe-only: attribution never
    /// touches the plan cache state the report path doesn't.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction failures.
    pub fn attribute(
        &self,
        policy: Policy,
        cause: Option<StragglerCause>,
    ) -> Result<ClusterAttribution, EmulatorError> {
        let ctx = self.ctx();
        let t_prime = match cause {
            Some(c) => Some(self.straggler_iteration_time(c)?),
            None => None,
        };
        let plan = self.policy_plan(&ctx, policy)?;
        let non_straggler = attribute_schedule_with_sleep(
            &ctx,
            plan.select(t_prime),
            t_prime,
            plan.sleep_plan(t_prime),
        );
        let straggler = match t_prime {
            Some(t) => {
                let base = self.policy_plan(&ctx, Policy::AllMax)?;
                Some(attribute_schedule(&ctx, base.select(None), Some(t)))
            }
            None => None,
        };
        Ok(ClusterAttribution {
            non_straggler,
            straggler,
            n_pipelines: self.config.n_pipelines,
            tensor_parallel: self.config.tensor_parallel,
        })
    }

    /// The attribution twin of [`Emulator::report_with_belief`]: deployed
    /// schedule answers the *believed* straggler time, blocking is charged
    /// against the *actual* one.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction failures.
    pub fn attribute_with_belief(
        &self,
        policy: Policy,
        believed_t_prime: Option<f64>,
        actual_t_prime: Option<f64>,
    ) -> Result<ClusterAttribution, EmulatorError> {
        let ctx = self.ctx();
        let plan = self.policy_plan(&ctx, policy)?;
        let schedule = plan.select(believed_t_prime);
        let sync = actual_t_prime.unwrap_or(0.0).max(schedule.time_s);
        let non_straggler = attribute_schedule_with_sleep(
            &ctx,
            schedule,
            Some(sync),
            plan.sleep_plan(believed_t_prime),
        );
        let straggler = match actual_t_prime {
            Some(t) => {
                let base = self.policy_plan(&ctx, Policy::AllMax)?;
                Some(attribute_schedule(
                    &ctx,
                    base.select(None),
                    Some(sync.max(t)),
                ))
            }
            None => None,
        };
        Ok(ClusterAttribution {
            non_straggler,
            straggler,
            n_pipelines: self.config.n_pipelines,
            tensor_parallel: self.config.tensor_parallel,
        })
    }

    /// Table 4-style savings of `policy` versus all-max under an optional
    /// generic straggler of `degree`.
    ///
    /// # Errors
    ///
    /// Propagates emulation failures.
    pub fn savings(&self, policy: Policy, degree: Option<f64>) -> Result<Savings, EmulatorError> {
        let cause = degree.map(|d| StragglerCause::Slowdown { degree: d });
        let base = self.report(Policy::AllMax, cause)?;
        let with = self.report(policy, cause)?;
        let savings_pct =
            (1.0 - with.non_straggler.total_j() / base.non_straggler.total_j()) * 100.0;
        let slowdown_pct =
            (with.non_straggler.iter_time_s / base.non_straggler.iter_time_s - 1.0) * 100.0;
        Ok(Savings {
            savings_pct,
            slowdown_pct,
        })
    }
}
