//! Exponential time–energy fit: `e(t) = a·e^{b·t} + c` with `a > 0, b < 0`.
//!
//! §4.1 relaxes the discrete frequency choices into this continuous family;
//! its slope supplies the flow capacities of the Capacity DAG (Appendix D:
//! `e⁺ = e(t−τ) − e(t)`, `e⁻ = e(t) − e(t+τ)`).

use std::fmt;

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than two distinct (time, energy) points.
    TooFewPoints(usize),
    /// Points are not a decreasing tradeoff (e.g. all identical times).
    Degenerate,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints(n) => write!(f, "need at least 2 points, got {n}"),
            FitError::Degenerate => write!(f, "points do not form a time-energy tradeoff"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted `e(t) = a·e^{b·(t − t0)} + c` curve.
///
/// `t0` anchors the exponential at the point set's earliest time so the
/// evaluation stays numerically stable even when absolute times are large
/// relative to their span (un-anchored, `exp(b·t)` underflows for steep
/// `b`, silently flattening the fit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpFit {
    /// Amplitude at `t0`, `> 0`.
    pub a: f64,
    /// Decay rate, `< 0` (energy falls as allotted time grows).
    pub b: f64,
    /// Asymptotic energy floor.
    pub c: f64,
    /// Time origin of the fit (earliest fitted point).
    pub t0: f64,
}

impl ExpFit {
    /// Least-squares fit to `(time, energy)` points.
    ///
    /// For each candidate decay rate `b` the optimal `(a, c)` follow from a
    /// 2×2 linear system; `b` itself is found by golden-section search over
    /// a wide log range, seeded by a coarse grid. This is robust for the
    /// convex, monotone point sets the profiler produces.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewPoints`] with fewer than two points,
    /// [`FitError::Degenerate`] if all times coincide.
    pub fn fit(points: &[(f64, f64)]) -> Result<ExpFit, FitError> {
        if points.len() < 2 {
            return Err(FitError::TooFewPoints(points.len()));
        }
        let t_lo = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let t_hi = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let span = t_hi - t_lo;
        if !(span.is_finite() && span > 0.0) {
            return Err(FitError::Degenerate);
        }

        // Shift times to the origin for numerical stability.
        let shifted: Vec<(f64, f64)> = points.iter().map(|&(t, e)| (t - t_lo, e)).collect();
        // Candidate |b| from very flat (0.01/span) to very steep (50/span).
        let sse_for = |b: f64| -> (f64, f64, f64) {
            let (a, c) = solve_ac(&shifted, b);
            let sse: f64 = shifted
                .iter()
                .map(|&(t, e)| {
                    let r = a * (b * t).exp() + c - e;
                    r * r
                })
                .sum();
            (sse, a, c)
        };

        let mut best = (f64::INFINITY, 0.0, 0.0, -1.0 / span);
        let steps = 64;
        for i in 0..steps {
            let mag = 0.01 * (50.0f64 / 0.01).powf(i as f64 / (steps - 1) as f64);
            let b = -mag / span;
            let (sse, a, c) = sse_for(b);
            if sse < best.0 && a > 0.0 {
                best = (sse, a, c, b);
            }
        }
        // Golden-section refine around the best grid b (in log-magnitude).
        let phi = 0.618_033_988_75;
        let center = (-best.3 * span).ln();
        let (mut lo, mut hi) = (center - 0.7, center + 0.7);
        for _ in 0..48 {
            let m1 = hi - phi * (hi - lo);
            let m2 = lo + phi * (hi - lo);
            let f1 = sse_for(-m1.exp() / span).0;
            let f2 = sse_for(-m2.exp() / span).0;
            if f1 < f2 {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        let b = -(0.5 * (lo + hi)).exp() / span;
        let (sse, a, c) = sse_for(b);
        let (_, a, c, b) = if sse <= best.0 && a > 0.0 {
            (sse, a, c, b)
        } else {
            best
        };
        if !(a.is_finite() && b.is_finite() && c.is_finite()) || a <= 0.0 {
            return Err(FitError::Degenerate);
        }
        Ok(ExpFit { a, b, c, t0: t_lo })
    }

    /// Fitted energy at time `t`.
    pub fn energy(&self, t: f64) -> f64 {
        self.a * (self.b * (t - self.t0)).exp() + self.c
    }

    /// Fitted `de/dt` at `t` (negative: more time, less energy).
    pub fn slope(&self, t: f64) -> f64 {
        self.a * self.b * (self.b * (t - self.t0)).exp()
    }

    /// Extra energy to speed this computation up from `t` to `t − tau`
    /// (`e⁺` of Appendix D). Positive.
    pub fn speedup_cost(&self, t: f64, tau: f64) -> f64 {
        self.energy(t - tau) - self.energy(t)
    }

    /// Energy saved by slowing down from `t` to `t + tau`
    /// (`e⁻` of Appendix D). Positive.
    pub fn slowdown_gain(&self, t: f64, tau: f64) -> f64 {
        self.energy(t) - self.energy(t + tau)
    }
}

/// Given `b`, least-squares `(a, c)` for `e ≈ a·e^{bt} + c`.
fn solve_ac(points: &[(f64, f64)], b: f64) -> (f64, f64) {
    let n = points.len() as f64;
    let mut sx = 0.0;
    let mut sxx = 0.0;
    let mut sy = 0.0;
    let mut sxy = 0.0;
    for &(t, e) in points {
        let x = (b * t).exp();
        sx += x;
        sxx += x * x;
        sy += e;
        sxy += x * e;
    }
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-300 {
        return (0.0, sy / n);
    }
    let a = (n * sxy - sx * sy) / det;
    let c = (sy - a * sx) / n;
    (a, c)
}
