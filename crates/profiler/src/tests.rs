use perseus_gpu::{FreqMHz, GpuSpec, NoiseModel, SimGpu, Workload};

use crate::fit::{ExpFit, FitError};
use crate::profile::{OnlineProfiler, OpProfile, ProfileDb, ProfileEntry, ProfileError};

fn wl() -> Workload {
    Workload::new(60.0, 0.008, 0.9)
}

#[test]
fn fit_recovers_known_exponential() {
    // Synthesize points from a known curve and check recovery.
    let truth = ExpFit {
        a: 120.0,
        b: -35.0,
        c: 18.0,
        t0: 0.0,
    };
    let pts: Vec<(f64, f64)> = (0..20)
        .map(|i| 0.02 + i as f64 * 0.004)
        .map(|t| (t, truth.energy(t)))
        .collect();
    let fit = ExpFit::fit(&pts).unwrap();
    for &(t, e) in &pts {
        let rel = (fit.energy(t) - e).abs() / e;
        assert!(rel < 1e-3, "at t={t}: fit {} vs truth {e}", fit.energy(t));
    }
}

#[test]
fn fit_rejects_degenerate_input() {
    assert!(matches!(
        ExpFit::fit(&[(1.0, 2.0)]),
        Err(FitError::TooFewPoints(1))
    ));
    assert!(matches!(ExpFit::fit(&[]), Err(FitError::TooFewPoints(0))));
    assert!(matches!(
        ExpFit::fit(&[(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]),
        Err(FitError::Degenerate)
    ));
}

#[test]
fn fit_two_points_exact_interpolation_at_endpoints() {
    let pts = [(0.05, 100.0), (0.10, 60.0)];
    let fit = ExpFit::fit(&pts).unwrap();
    assert!((fit.energy(0.05) - 100.0).abs() < 1.0);
    assert!((fit.energy(0.10) - 60.0).abs() < 1.0);
}

#[test]
fn fit_matches_gpu_pareto_curve_closely() {
    // The fit is the relaxation of the true discrete curve (§4.1); it must
    // approximate the model's Pareto points well. The curve has a kink at
    // the throttling knee (steep near t_min, shallow beyond), so the
    // single exponential is allowed a worst case of 10% there, but the
    // bulk of the curve must track within a few percent.
    let spec = GpuSpec::a100_pcie();
    let profile = OpProfile::from_model(&spec, &wl());
    let fit = profile.fit().unwrap();
    let mut errors: Vec<f64> = profile
        .pareto()
        .iter()
        .map(|p| (fit.energy(p.time_s) - p.energy_j).abs() / p.energy_j)
        .collect();
    errors.sort_by(f64::total_cmp);
    let worst = *errors.last().unwrap();
    let median = errors[errors.len() / 2];
    assert!(worst < 0.10, "worst fit error {:.1}%", worst * 100.0);
    assert!(median < 0.03, "median fit error {:.1}%", median * 100.0);
}

#[test]
fn fit_slope_negative_and_costs_positive() {
    let spec = GpuSpec::a40();
    let profile = OpProfile::from_model(&spec, &wl());
    let fit = profile.fit().unwrap();
    let t_mid = 0.5 * (profile.t_min() + profile.t_max());
    assert!(fit.slope(t_mid) < 0.0);
    assert!(fit.speedup_cost(t_mid, 0.001) > 0.0);
    assert!(fit.slowdown_gain(t_mid, 0.001) > 0.0);
    // Convexity: speeding up costs more than slowing down saves.
    assert!(fit.speedup_cost(t_mid, 0.001) >= fit.slowdown_gain(t_mid, 0.001));
}

#[test]
fn model_profile_endpoints() {
    let spec = GpuSpec::a100_pcie();
    let profile = OpProfile::from_model(&spec, &wl());
    assert!((profile.t_min() - spec.time(&wl(), spec.max_freq())).abs() < 1e-12);
    let f_opt = spec.min_energy_freq(&wl());
    assert!((profile.t_max() - spec.time(&wl(), f_opt)).abs() < 1e-12);
    assert!(profile.min_energy() < profile.max_freq_energy());
}

#[test]
fn slowest_within_picks_boundary() {
    let spec = GpuSpec::a100_pcie();
    let profile = OpProfile::from_model(&spec, &wl());
    let t900 = spec.time(&wl(), FreqMHz(900));
    let e = profile.slowest_within(t900).unwrap();
    assert_eq!(e.freq, FreqMHz(900));
    // Tight deadline: error.
    assert!(matches!(
        profile.slowest_within(profile.t_min() / 2.0),
        Err(ProfileError::DeadlineTooTight { .. })
    ));
    // Very loose deadline: min-energy point, never slower.
    let e = profile.slowest_within(1e9).unwrap();
    assert!((e.time_s - profile.t_max()).abs() < 1e-12);
}

#[test]
fn online_sweep_stops_early() {
    // §5: the sweep must not visit clocks below the energy minimum (plus
    // patience), saving profiling time.
    let spec = GpuSpec::a100_pcie();
    let mut gpu = SimGpu::new(spec.clone());
    let profile = OnlineProfiler::default().profile(&mut gpu, &wl());
    let total = spec.frequencies().len();
    assert!(
        profile.entries().len() < total,
        "sweep should stop early: {} of {total}",
        profile.entries().len()
    );
    // But it must reach (or pass) the minimum-energy frequency.
    let f_opt = spec.min_energy_freq(&wl());
    let lowest = profile.entries().last().unwrap().freq;
    assert!(lowest <= f_opt);
}

#[test]
fn online_profile_restores_frequency() {
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    gpu.set_frequency(FreqMHz(1200)).unwrap();
    let _ = OnlineProfiler::default().profile(&mut gpu, &wl());
    assert_eq!(gpu.locked_freq(), FreqMHz(1200));
}

#[test]
fn online_profile_with_noise_still_usable() {
    let spec = GpuSpec::a100_pcie();
    let mut gpu = SimGpu::new(spec.clone()).with_noise(NoiseModel::realistic(42));
    let profile = OnlineProfiler {
        reps: 5,
        ..Default::default()
    }
    .profile(&mut gpu, &wl());
    let fit = profile.fit().unwrap();
    // The noisy fit should still approximate the clean model within a few
    // percent at the endpoints.
    let clean = OpProfile::from_model(&spec, &wl());
    let t = clean.t_min();
    let rel = (fit.energy(t) - clean.max_freq_energy()).abs() / clean.max_freq_energy();
    assert!(rel < 0.08, "noisy fit off by {:.1}%", rel * 100.0);
}

#[test]
fn online_profiling_charges_simulated_time() {
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    assert_eq!(gpu.clock_s(), 0.0);
    let _ = OnlineProfiler::default().profile(&mut gpu, &wl());
    assert!(
        gpu.clock_s() > 0.0,
        "profiling must consume simulated time (§6.5 overhead)"
    );
}

#[test]
fn pareto_filtering_drops_dominated_entries() {
    // Hand-build entries where a middle frequency is dominated.
    let entries = vec![
        ProfileEntry {
            freq: FreqMHz(1410),
            time_s: 1.0,
            energy_j: 100.0,
        },
        ProfileEntry {
            freq: FreqMHz(1200),
            time_s: 1.2,
            energy_j: 105.0,
        }, // dominated
        ProfileEntry {
            freq: FreqMHz(900),
            time_s: 1.5,
            energy_j: 80.0,
        },
    ];
    let p = OpProfile::from_entries(entries);
    assert_eq!(p.pareto().len(), 2);
    assert_eq!(p.entries().len(), 3);
}

#[test]
fn profile_db_roundtrip() {
    let spec = GpuSpec::a100_pcie();
    let mut db: ProfileDb<(usize, u8)> = ProfileDb::new();
    assert!(db.is_empty());
    db.insert((0, 0), OpProfile::from_model(&spec, &wl()));
    db.insert((0, 1), OpProfile::from_model(&spec, &wl().scaled(2.0)));
    assert_eq!(db.len(), 2);
    assert!(db.get(&(0, 0)).is_some());
    assert!(db.get(&(9, 9)).is_none());
    assert_eq!(db.iter().count(), 2);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_workload() -> impl Strategy<Value = Workload> {
        (1.0f64..300.0, 0.0f64..0.03, 0.4f64..1.0).prop_map(|(c, m, u)| Workload::new(c, m, u))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fit_monotone_decreasing_on_measured_range(w in arb_workload()) {
            let spec = GpuSpec::a100_pcie();
            let profile = OpProfile::from_model(&spec, &w);
            if profile.pareto().len() < 3 { return Ok(()); }
            let fit = profile.fit().unwrap();
            let (lo, hi) = (profile.t_min(), profile.t_max());
            let mut prev = f64::INFINITY;
            for i in 0..20 {
                let t = lo + (hi - lo) * i as f64 / 19.0;
                let e = fit.energy(t);
                prop_assert!(e <= prev + 1e-9);
                prev = e;
            }
        }

        #[test]
        fn slowest_within_monotone_in_deadline(w in arb_workload()) {
            let spec = GpuSpec::a40();
            let profile = OpProfile::from_model(&spec, &w);
            let (lo, hi) = (profile.t_min(), profile.t_max());
            let mut prev_freq = u32::MAX;
            for i in 0..10 {
                let d = lo + (hi - lo) * i as f64 / 9.0;
                let e = profile.slowest_within(d).unwrap();
                prop_assert!(e.freq.0 <= prev_freq);
                prev_freq = e.freq.0;
            }
        }
    }
}

#[test]
fn fit_is_stable_for_large_absolute_times() {
    // Times around 100 s with a 0.5 s span: an un-anchored exponential
    // underflows for steep decay rates. The anchored fit must still
    // recover the curve.
    let truth = ExpFit {
        a: 80.0,
        b: -20.0,
        c: 30.0,
        t0: 100.0,
    };
    let pts: Vec<(f64, f64)> = (0..20)
        .map(|i| 100.0 + i as f64 * 0.025)
        .map(|t| (t, truth.energy(t)))
        .collect();
    let fit = ExpFit::fit(&pts).unwrap();
    for &(t, e) in &pts {
        let rel = (fit.energy(t) - e).abs() / e;
        assert!(rel < 1e-3, "at t={t}: fit {} vs truth {e}", fit.energy(t));
    }
}
