//! Per-computation profiles and the §5 online sweep protocol.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use perseus_gpu::{FreqMHz, GpuSpec, SimGpu, Workload};

use crate::fit::{ExpFit, FitError};

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileEntry {
    /// Locked SM frequency during the measurement.
    pub freq: FreqMHz,
    /// Measured computation latency, seconds.
    pub time_s: f64,
    /// Measured computation energy, joules.
    pub energy_j: f64,
}

/// Errors from profile queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The profile holds no measurements.
    Empty,
    /// Fit failure.
    Fit(FitError),
    /// No frequency satisfies the deadline.
    DeadlineTooTight {
        /// Requested deadline, seconds.
        deadline_s: f64,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Empty => write!(f, "profile has no measurements"),
            ProfileError::Fit(e) => write!(f, "fit failed: {e}"),
            ProfileError::DeadlineTooTight { deadline_s } => {
                write!(f, "no frequency meets deadline {deadline_s} s")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<FitError> for ProfileError {
    fn from(e: FitError) -> Self {
        ProfileError::Fit(e)
    }
}

/// The time/energy profile of one computation type across frequencies.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Raw measurements, descending in frequency (sweep order).
    entries: Vec<ProfileEntry>,
    /// Pareto-optimal subset, ascending in time.
    pareto: Vec<ProfileEntry>,
}

impl OpProfile {
    /// Builds a profile from raw measurements (any order); Pareto points
    /// are extracted automatically.
    pub fn from_entries(mut entries: Vec<ProfileEntry>) -> OpProfile {
        entries.sort_by_key(|x| std::cmp::Reverse(x.freq));
        let mut by_time = entries.clone();
        by_time.sort_by(|x, y| x.time_s.total_cmp(&y.time_s));
        let mut pareto = Vec::new();
        let mut best_e = f64::INFINITY;
        for p in by_time {
            if p.energy_j < best_e {
                best_e = p.energy_j;
                pareto.push(p);
            }
        }
        OpProfile { entries, pareto }
    }

    /// Noise-free analytic profile straight from the GPU model: the basis
    /// of the paper's large-scale *emulation* (§6.3, "grounded on
    /// fine-grained profiling").
    pub fn from_model(spec: &GpuSpec, w: &Workload) -> OpProfile {
        let entries = spec
            .frequencies()
            .into_iter()
            .rev()
            .map(|f| ProfileEntry {
                freq: f,
                time_s: spec.time(w, f),
                energy_j: spec.energy(w, f),
            })
            .collect();
        OpProfile::from_entries(entries)
    }

    /// All raw measurements, descending in frequency.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Pareto-optimal points, ascending in time.
    pub fn pareto(&self) -> &[ProfileEntry] {
        &self.pareto
    }

    /// Shortest achievable latency (max frequency).
    ///
    /// # Panics
    ///
    /// Panics on an empty profile; construct via the provided builders.
    pub fn t_min(&self) -> f64 {
        self.pareto.first().expect("non-empty profile").time_s
    }

    /// Latency at the minimum-energy frequency — slowing beyond this wastes
    /// energy (the `T*` bound per computation).
    pub fn t_max(&self) -> f64 {
        self.pareto.last().expect("non-empty profile").time_s
    }

    /// Minimum energy over all measured frequencies.
    pub fn min_energy(&self) -> f64 {
        self.pareto.last().expect("non-empty profile").energy_j
    }

    /// Energy at the maximum frequency.
    pub fn max_freq_energy(&self) -> f64 {
        self.pareto.first().expect("non-empty profile").energy_j
    }

    /// Fits the continuous relaxation to the Pareto points.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] for degenerate profiles.
    pub fn fit(&self) -> Result<ExpFit, FitError> {
        let pts: Vec<(f64, f64)> = self.pareto.iter().map(|p| (p.time_s, p.energy_j)).collect();
        ExpFit::fit(&pts)
    }

    /// The slowest measured frequency whose latency is at most `deadline`
    /// (§4.3's schedule-to-frequency conversion), with its entry.
    ///
    /// # Errors
    ///
    /// [`ProfileError::DeadlineTooTight`] if even the fastest measurement
    /// misses the deadline, [`ProfileError::Empty`] on an empty profile.
    pub fn slowest_within(&self, deadline: f64) -> Result<ProfileEntry, ProfileError> {
        if self.pareto.is_empty() {
            return Err(ProfileError::Empty);
        }
        // Pareto points ascend in time; take the last one <= deadline.
        let mut chosen = None;
        for p in &self.pareto {
            if p.time_s <= deadline + 1e-12 {
                chosen = Some(*p);
            } else {
                break;
            }
        }
        chosen.ok_or(ProfileError::DeadlineTooTight {
            deadline_s: deadline,
        })
    }

    /// Interpolated energy at planned duration `t` using the fitted curve,
    /// clamped to the measured range.
    pub fn planned_energy(&self, fit: &ExpFit, t: f64) -> f64 {
        fit.energy(t.clamp(self.t_min(), self.t_max()))
    }

    /// The raw measurement taken at exactly `freq`, if the sweep visited it.
    pub fn entry_at(&self, freq: FreqMHz) -> Option<ProfileEntry> {
        self.entries.iter().find(|e| e.freq == freq).copied()
    }

    /// §4.3 conversion under a frequency cap (datacenter power/thermal
    /// capping, §2.3): the slowest measurement with `freq <= cap` whose
    /// latency is at most `deadline`; if even the fastest capped
    /// measurement misses the deadline, that fastest capped measurement —
    /// the best the throttled silicon can do. Returns `None` only when no
    /// measurement at or below the cap exists (the sweep never visited a
    /// frequency that low); callers then fall back to the slowest
    /// measured entry.
    pub fn best_under_cap(&self, deadline: f64, cap: FreqMHz) -> Option<ProfileEntry> {
        // Pareto points ascend in time (descend in frequency), so the
        // first capped entry is the fastest allowed and later capped
        // entries are progressively slower.
        let mut fastest_capped = None;
        let mut chosen = None;
        for p in &self.pareto {
            if p.freq > cap {
                continue;
            }
            if fastest_capped.is_none() {
                fastest_capped = Some(*p);
            }
            if p.time_s <= deadline + 1e-12 {
                chosen = Some(*p);
            } else {
                break;
            }
        }
        // A cap below the min-energy frequency has no Pareto entry (those
        // points are dominated) but is still physically real: the raw
        // sweep is descending in frequency, so the first raw entry at or
        // below the cap is the capped silicon's actual operating point.
        chosen
            .or(fastest_capped)
            .or_else(|| self.entries.iter().find(|e| e.freq <= cap).copied())
    }

    /// The slowest measurement overall (lowest visited frequency) — the
    /// terminal fallback when a cap sits below every visited frequency.
    pub fn slowest_entry(&self) -> ProfileEntry {
        *self.pareto.last().expect("non-empty profile")
    }
}

/// The §5 online profiling protocol: sweep frequencies from highest to
/// lowest at iteration granularity, averaging `reps` measurements each,
/// stopping once energy rises past the best seen (with patience for noise).
#[derive(Debug, Clone)]
pub struct OnlineProfiler {
    /// Iterations averaged per frequency.
    pub reps: usize,
    /// Sweep stops after energy exceeds the best seen by this relative
    /// margin for `patience` consecutive frequencies.
    pub rise_margin: f64,
    /// Consecutive rising frequencies tolerated before stopping.
    pub patience: usize,
}

impl Default for OnlineProfiler {
    fn default() -> Self {
        OnlineProfiler {
            reps: 3,
            rise_margin: 0.01,
            patience: 2,
        }
    }
}

impl OnlineProfiler {
    /// Runs the sweep for workload `w` on `gpu`. The device's simulated
    /// clock advances by the full profiling cost; read it before/after for
    /// §6.5-style overhead accounting.
    pub fn profile(&self, gpu: &mut SimGpu, w: &Workload) -> OpProfile {
        let mut entries = Vec::new();
        let mut best_e = f64::INFINITY;
        let mut rising = 0usize;
        let freqs: Vec<FreqMHz> = gpu.spec().frequencies().into_iter().rev().collect();
        let restore = gpu.locked_freq();
        for f in freqs {
            gpu.set_frequency(f)
                .expect("sweeping supported frequencies");
            let mut t_sum = 0.0;
            let mut e_sum = 0.0;
            for _ in 0..self.reps.max(1) {
                let (t, e) = gpu.run(w);
                t_sum += t;
                e_sum += e;
            }
            let reps = self.reps.max(1) as f64;
            let entry = ProfileEntry {
                freq: f,
                time_s: t_sum / reps,
                energy_j: e_sum / reps,
            };
            entries.push(entry);
            if entry.energy_j < best_e {
                best_e = entry.energy_j;
                rising = 0;
            } else if entry.energy_j > best_e * (1.0 + self.rise_margin) {
                rising += 1;
                if rising >= self.patience {
                    break;
                }
            }
        }
        gpu.set_frequency(restore)
            .expect("restoring previous frequency");
        OpProfile::from_entries(entries)
    }
}

/// Keyed profile collection; pipelines key by `(stage, kind)`.
#[derive(Debug, Clone)]
pub struct ProfileDb<K: Eq + Hash> {
    map: HashMap<K, OpProfile>,
}

impl<K: Eq + Hash> Default for ProfileDb<K> {
    fn default() -> Self {
        ProfileDb {
            map: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash> ProfileDb<K> {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the profile for `key`.
    pub fn insert(&mut self, key: K, profile: OpProfile) {
        self.map.insert(key, profile);
    }

    /// Profile for `key`, if recorded.
    pub fn get(&self, key: &K) -> Option<&OpProfile> {
        self.map.get(key)
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no profiles are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(key, profile)`.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &OpProfile)> {
        self.map.iter()
    }
}
