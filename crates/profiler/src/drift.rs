//! Streaming profile drift: a seeded random walk over a baseline
//! [`ProfileDb`].
//!
//! Profiles are measured once at job start (§5), but real fleets drift:
//! thermal throttling, datacenter ambient swings, and kernel updates all
//! move the time/energy curves the planner optimized against. A
//! [`ProfileDrift`] source models that as a per-key multiplicative random
//! walk driven by the same [`NoiseModel`] the simulated devices use —
//! each [`ProfileDrift::step`] perturbs every computation's cumulative
//! `(time_factor, energy_factor)` pair and emits the resulting
//! [`ProfileDelta`]s, which the server's drift watcher accumulates until
//! a re-characterization threshold trips.
//!
//! Determinism: the walk is fully determined by `(baseline, noise.seed)`.
//! Keys are stepped in sorted order, so two drift sources built from the
//! same inputs emit byte-identical delta streams — the property the
//! chaos replay and `ha_suite` gates rely on.

use std::collections::HashMap;
use std::hash::Hash;

use perseus_gpu::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::{OpProfile, ProfileDb, ProfileEntry};

/// Cumulative drift of one computation relative to its baseline profile.
///
/// Factors are multiplicative: `time_factor = 1.07` means the
/// computation now takes 7% longer than when it was profiled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileDelta<K> {
    /// The drifted computation (stage × kind in pipeline use).
    pub key: K,
    /// Current time multiplier vs. the baseline profile.
    pub time_factor: f64,
    /// Current energy multiplier vs. the baseline profile.
    pub energy_factor: f64,
}

impl<K> ProfileDelta<K> {
    /// Largest relative deviation from the baseline:
    /// `max(|time_factor − 1|, |energy_factor − 1|)`.
    pub fn magnitude(&self) -> f64 {
        (self.time_factor - 1.0)
            .abs()
            .max((self.energy_factor - 1.0).abs())
    }
}

/// Bounds keeping the walk physical: a profile never drifts to less than
/// half or more than double its measured baseline.
const FACTOR_MIN: f64 = 0.5;
const FACTOR_MAX: f64 = 2.0;

/// A seeded multiplicative random walk over every profile in a baseline
/// database. See the module docs.
#[derive(Debug)]
pub struct ProfileDrift<K: Eq + Hash + Ord + Clone> {
    baseline: ProfileDb<K>,
    /// Baseline keys in sorted order — the deterministic step order.
    keys: Vec<K>,
    /// Cumulative `(time_factor, energy_factor)` per key.
    factors: HashMap<K, (f64, f64)>,
    noise: NoiseModel,
    rng: StdRng,
    steps: u64,
}

impl<K: Eq + Hash + Ord + Clone> ProfileDrift<K> {
    /// A drift source over `baseline`, seeded and scaled by `noise`
    /// (`noise.time_rel_sigma` / `noise.energy_rel_sigma` are the
    /// per-step walk widths; `noise.seed` fixes the stream).
    pub fn new(baseline: ProfileDb<K>, noise: NoiseModel) -> ProfileDrift<K> {
        let mut keys: Vec<K> = baseline.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        let factors = keys.iter().map(|k| (k.clone(), (1.0, 1.0))).collect();
        ProfileDrift {
            baseline,
            keys,
            factors,
            rng: StdRng::seed_from_u64(noise.seed),
            noise,
            steps: 0,
        }
    }

    /// Advances the walk one step: every key's factors are multiplied by
    /// an independent Gaussian step, then clamped to `[0.5, 2.0]`.
    /// Returns the cumulative deltas after the step, sorted by key.
    pub fn step(&mut self) -> Vec<ProfileDelta<K>> {
        self.steps += 1;
        for key in &self.keys {
            let (t, e) = self.factors.get_mut(key).expect("key seeded at new");
            *t = (*t * gaussian_factor(&mut self.rng, self.noise.time_rel_sigma))
                .clamp(FACTOR_MIN, FACTOR_MAX);
            *e = (*e * gaussian_factor(&mut self.rng, self.noise.energy_rel_sigma))
                .clamp(FACTOR_MIN, FACTOR_MAX);
        }
        self.deltas()
    }

    /// Applies a deterministic shift on top of the walk (scripted drift
    /// bursts: every key's factors are multiplied by the given pair and
    /// clamped). Returns the cumulative deltas after the shift.
    pub fn shift_all(&mut self, time_factor: f64, energy_factor: f64) -> Vec<ProfileDelta<K>> {
        for key in &self.keys {
            let (t, e) = self.factors.get_mut(key).expect("key seeded at new");
            *t = (*t * time_factor).clamp(FACTOR_MIN, FACTOR_MAX);
            *e = (*e * energy_factor).clamp(FACTOR_MIN, FACTOR_MAX);
        }
        self.deltas()
    }

    /// Cumulative deltas vs. the baseline, sorted by key.
    pub fn deltas(&self) -> Vec<ProfileDelta<K>> {
        self.keys
            .iter()
            .map(|k| {
                let (t, e) = self.factors[k];
                ProfileDelta {
                    key: k.clone(),
                    time_factor: t,
                    energy_factor: e,
                }
            })
            .collect()
    }

    /// Largest [`ProfileDelta::magnitude`] across all keys.
    pub fn magnitude(&self) -> f64 {
        self.deltas()
            .iter()
            .map(ProfileDelta::magnitude)
            .fold(0.0, f64::max)
    }

    /// The baseline database the walk drifts away from.
    pub fn baseline(&self) -> &ProfileDb<K> {
        &self.baseline
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The drifted database: every baseline profile rescaled by its
    /// current factors (frequencies untouched; Pareto fronts re-derived).
    pub fn current(&self) -> ProfileDb<K> {
        let mut db = ProfileDb::new();
        for (key, profile) in self.baseline.iter() {
            let (t, e) = self.factors[key];
            db.insert(key.clone(), scale_profile(profile, t, e));
        }
        db
    }
}

/// `profile` with every measurement's time and energy rescaled.
pub fn scale_profile(profile: &OpProfile, time_factor: f64, energy_factor: f64) -> OpProfile {
    OpProfile::from_entries(
        profile
            .entries()
            .iter()
            .map(|p| ProfileEntry {
                freq: p.freq,
                time_s: p.time_s * time_factor,
                energy_j: p.energy_j * energy_factor,
            })
            .collect(),
    )
}

/// Multiplicative step `max(0.5, 1 + N(0, sigma))` via Box–Muller — the
/// same shape `SimGpu` applies to individual measurements.
fn gaussian_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (1.0 + sigma * z).max(0.5)
}
