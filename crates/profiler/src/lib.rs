//! Online time/energy profiling and continuous time–energy fits.
//!
//! The Perseus client measures each forward/backward computation *in vivo*
//! at the start of training (§5): the GPU frequency is swept from the
//! highest to the lowest at iteration granularity and the sweep stops once
//! energy starts increasing (frequencies beyond that point cost more time
//! *and* more energy). The server then relaxes the discrete choices into a
//! continuous exponential `e(t) = a·e^{b·t} + c` fitted to the
//! Pareto-optimal measurements (§4.1) — the relaxation that makes the
//! otherwise NP-hard Pipeline Energy Minimization problem tractable.
//!
//! This crate provides:
//!
//! * [`OpProfile`] — the per-computation measurement table with Pareto
//!   filtering and the fitted [`ExpFit`],
//! * [`OnlineProfiler`] — the §5 sweep protocol against a simulated device,
//!   with early stopping and overhead accounting,
//! * [`ProfileDb`] — a keyed collection of profiles (one per
//!   stage × {forward, backward} in pipeline use).
//!
//! # Examples
//!
//! ```
//! use perseus_gpu::{GpuSpec, SimGpu, Workload};
//! use perseus_profiler::OnlineProfiler;
//!
//! let spec = GpuSpec::a100_pcie();
//! let w = Workload::new(60.0, 0.008, 0.9);
//! let mut gpu = SimGpu::new(spec.clone());
//! let profile = OnlineProfiler::default().profile(&mut gpu, &w);
//! let fit = profile.fit().unwrap();
//! // Energy decreases as we allow more time (b < 0 ⇒ decreasing curve).
//! assert!(fit.energy(profile.t_min()) > fit.energy(profile.t_max()));
//! ```

mod drift;
mod fit;
mod persist;
mod profile;

pub use drift::{scale_profile, ProfileDelta, ProfileDrift};
pub use fit::{ExpFit, FitError};
pub use profile::{OnlineProfiler, OpProfile, ProfileDb, ProfileEntry, ProfileError};

#[cfg(test)]
mod tests;
