//! [`Persist`] implementations for profiles.
//!
//! Only the raw measurement entries are serialized; the Pareto subset is
//! rebuilt through [`OpProfile::from_entries`], which is deterministic, so
//! a decoded profile is bit-identical to the original (same entries, same
//! Pareto extraction). [`ProfileDb`] iterates a `HashMap`, whose order is
//! nondeterministic — entries are sorted by key before encoding so equal
//! databases always encode to equal bytes (the recovery differential
//! tests compare snapshots byte-for-byte).

use std::hash::Hash;

use perseus_store::{ByteReader, ByteWriter, Persist, StoreError};

use crate::profile::{OpProfile, ProfileDb, ProfileEntry};

impl Persist for ProfileEntry {
    fn encode(&self, w: &mut ByteWriter) {
        self.freq.encode(w);
        w.put_f64(self.time_s);
        w.put_f64(self.energy_j);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(ProfileEntry {
            freq: Persist::decode(r)?,
            time_s: r.get_f64()?,
            energy_j: r.get_f64()?,
        })
    }
}

impl Persist for OpProfile {
    fn encode(&self, w: &mut ByteWriter) {
        self.entries().to_vec().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let entries = Vec::<ProfileEntry>::decode(r)?;
        if entries.is_empty() {
            return Err(StoreError::corrupt("profile has no measurements"));
        }
        Ok(OpProfile::from_entries(entries))
    }
}

impl<K: Persist + Ord + Eq + Hash + Clone> Persist for ProfileDb<K> {
    fn encode(&self, w: &mut ByteWriter) {
        let mut pairs: Vec<(&K, &OpProfile)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        w.put_usize(pairs.len());
        for (k, p) in pairs {
            k.encode(w);
            p.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let n = r.get_len(1)?;
        let mut db = ProfileDb::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let p = OpProfile::decode(r)?;
            db.insert(k, p);
        }
        Ok(db)
    }
}
