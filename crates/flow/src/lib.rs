//! Maximum-flow substrate for Perseus.
//!
//! `GetNextPareto` (paper §4.3, Appendix D) finds the cheapest way to
//! shorten every critical path by the unit time `τ` by solving a minimum
//! cut on a *Capacity DAG* whose edges carry both **lower and upper** flow
//! bounds. This crate implements:
//!
//! * [`FlowGraph`] — a residual-pair network with Dinic max flow (the paper
//!   analyzes Edmonds–Karp; Dinic has the same answers, faster)
//!   ([`FlowGraph::max_flow`]) and residual reachability for min-cut
//!   extraction,
//! * [`BoundedFlowProblem`] — max flow with edge lower bounds via the
//!   dummy-source/sink transformation (paper Algorithm 3), returning the
//!   min cut of the original network.
//!
//! # Examples
//!
//! ```
//! use perseus_flow::FlowGraph;
//!
//! let mut g = FlowGraph::new(4);
//! let (s, t) = (0, 3);
//! g.add_edge(s, 1, 3.0);
//! g.add_edge(s, 2, 2.0);
//! g.add_edge(1, t, 2.0);
//! g.add_edge(2, t, 3.0);
//! assert_eq!(g.max_flow(s, t), 4.0);
//! ```

mod bounded;
mod graph;

pub use bounded::{BoundedEdge, BoundedFlowProblem, BoundedFlowSolution, FlowError};
pub use graph::FlowGraph;

#[cfg(test)]
mod tests;
