//! Maximum-flow substrate for Perseus.
//!
//! `GetNextPareto` (paper §4.3, Appendix D) finds the cheapest way to
//! shorten every critical path by the unit time `τ` by solving a minimum
//! cut on a *Capacity DAG* whose edges carry both **lower and upper** flow
//! bounds. This crate implements:
//!
//! * [`FlowGraph`] — a residual-pair network with Dinic max flow (the paper
//!   analyzes Edmonds–Karp; Dinic has the same answers, faster)
//!   ([`FlowGraph::max_flow`]) and residual reachability for min-cut
//!   extraction,
//! * [`BoundedFlowProblem`] — max flow with edge lower bounds via the
//!   dummy-source/sink transformation (paper Algorithm 3), returning the
//!   min cut of the original network.
//!
//! # Examples
//!
//! ```
//! use perseus_flow::FlowGraph;
//!
//! let mut g = FlowGraph::new(4);
//! let (s, t) = (0, 3);
//! g.add_edge(s, 1, 3.0);
//! g.add_edge(s, 2, 2.0);
//! g.add_edge(1, t, 2.0);
//! g.add_edge(2, t, 3.0);
//! assert_eq!(g.max_flow(s, t), 4.0);
//! ```

mod bounded;
mod graph;

/// Relative capacity epsilon: residual capacities below `CAP_EPS` × the
/// largest edge capacity of the network are treated as exhausted.
///
/// Why `1e-12`: pushing flow subtracts capacities, so residuals carry
/// relative rounding error of order `1e-16` × the capacity scale; `1e-12`
/// sits four orders of magnitude above that noise floor while staying far
/// below any real capacity difference the Capacity DAG produces (fitted
/// per-τ energies differ at the `1e-3` relative level or more). Both the
/// Dinic BFS/DFS usability test and min-cut residual reachability use
/// this threshold, which is what makes the minimal source-side cut
/// insensitive to *which* maximum flow (cold or warm-started) produced
/// the final residual network.
pub const CAP_EPS: f64 = 1e-12;

/// Relative flow-conservation epsilon: feasibility checks accept a routed
/// mass within `FLOW_EPS` × the required total (floored at 1.0 so tiny
/// problems are not held to sub-ulp standards).
///
/// Why `1e-9`: the feasibility phase sums many per-edge lower bounds and
/// compares against a max-flow total accumulated over as many
/// augmentations; each contributes ~`1e-16` relative error, and `1e-9`
/// gives the comparison three orders of headroom over thousands of edges
/// while still rejecting any genuinely unroutable lower bound (which
/// misses by whole edge-capacities, not parts per billion).
pub const FLOW_EPS: f64 = 1e-9;

pub use bounded::{BoundedEdge, BoundedFlowProblem, BoundedFlowSolution, FlowError, WarmStart};
pub use graph::{FlowGraph, FlowTopology, ResidualState};

#[cfg(test)]
mod tests;
