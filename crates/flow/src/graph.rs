//! Residual-pair flow network with Dinic maximum flow.

use perseus_telemetry::Telemetry;

/// Residual capacities below this fraction of the largest edge capacity are
/// treated as exhausted, guarding BFS against floating-point crumbs.
const REL_EPS: f64 = 1e-12;

#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    /// Remaining residual capacity.
    cap: f64,
}

/// A flow network over nodes `0..n` using the classic residual-pair edge
/// representation: every added edge owns a paired reverse arc, and pushing
/// flow moves capacity between the two.
///
/// Capacities are `f64`; Dinic's algorithm terminates in `O(V²E)` time
/// independent of capacity values, so real-valued capacities are safe.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    adj: Vec<Vec<usize>>,
    arcs: Vec<Arc>,
    /// Initial forward capacity per added edge, indexed by edge handle.
    init: Vec<f64>,
    eps: f64,
}

impl FlowGraph {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            adj: vec![Vec::new(); n],
            arcs: Vec::new(),
            init: Vec::new(),
            eps: 0.0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of added edges (not counting residual reverse arcs).
    pub fn edge_count(&self) -> usize {
        self.init.len()
    }

    /// Adds a directed edge `u -> v` with capacity `cap` (and a zero-capacity
    /// reverse arc). Returns the edge handle used by [`FlowGraph::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `cap` is negative/NaN.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        self.add_edge_with_back(u, v, cap, 0.0)
    }

    /// Adds a residual pair with nonzero initial capacity in both
    /// directions: `u -> v` with `cap_fwd` and `v -> u` with `cap_back`.
    ///
    /// This directly models an edge of a *residual* network (used by the
    /// second phase of max flow with lower bounds). The returned handle's
    /// [`FlowGraph::flow_on`] reports **net** forward flow, which may be
    /// negative if more flow ended up pushed backward.
    ///
    /// # Panics
    ///
    /// Panics if endpoints are out of range or a capacity is negative/NaN.
    pub fn add_edge_with_back(&mut self, u: usize, v: usize, cap_fwd: f64, cap_back: f64) -> usize {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "endpoint out of range"
        );
        assert!(
            cap_fwd >= 0.0 && cap_back >= 0.0,
            "capacities must be non-negative"
        );
        let id = self.init.len();
        let a = self.arcs.len();
        self.arcs.push(Arc {
            to: v,
            cap: cap_fwd,
        });
        self.arcs.push(Arc {
            to: u,
            cap: cap_back,
        });
        self.adj[u].push(a);
        self.adj[v].push(a + 1);
        self.init.push(cap_fwd);
        let m = cap_fwd.max(cap_back);
        if m.is_finite() && m > self.eps / REL_EPS {
            self.eps = m * REL_EPS;
        }
        id
    }

    /// Net forward flow currently on edge `e` (initial capacity minus
    /// remaining residual capacity).
    pub fn flow_on(&self, e: usize) -> f64 {
        self.init[e] - self.arcs[2 * e].cap
    }

    /// Remaining forward residual capacity of edge `e`.
    pub fn residual_of(&self, e: usize) -> f64 {
        self.arcs[2 * e].cap
    }

    fn usable(&self, cap: f64) -> bool {
        cap > self.eps
    }

    /// Computes the maximum `s -> t` flow with Dinic's algorithm, mutating the
    /// residual capacities in place. Calling it twice continues from the
    /// current residual state (the second call returns 0 extra flow).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        self.max_flow_with(s, t, &Telemetry::disabled())
    }

    /// [`FlowGraph::max_flow`] with instrumentation: records the number of
    /// calls, the node/edge totals of the solved networks, and the number
    /// of augmenting paths Dinic pushed. With disabled telemetry this is
    /// exactly `max_flow` (a local `u64` increment per augmentation is the
    /// only residue).
    pub fn max_flow_with(&mut self, s: usize, t: usize, telemetry: &Telemetry) -> f64 {
        assert!(s != t, "source and sink must differ");
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "terminal out of range"
        );
        // Dinic's algorithm: repeat { BFS level graph; DFS blocking flow }.
        // Asymptotically O(V²E) and near-linear on the sparse, shallow
        // capacity DAGs Perseus produces — the paper's Edmonds–Karp bound
        // (§4.3 complexity analysis) is an upper bound we comfortably beat.
        let n = self.adj.len();
        let mut total = 0.0;
        let mut augmentations = 0u64;
        let mut level = vec![u32::MAX; n];
        let mut iter = vec![0usize; n];
        let mut queue = std::collections::VecDeque::new();
        loop {
            // BFS: build level graph on usable residual arcs.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            queue.clear();
            level[s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &a in &self.adj[u] {
                    let arc = self.arcs[a];
                    if level[arc.to] == u32::MAX && self.usable(arc.cap) {
                        level[arc.to] = level[u] + 1;
                        queue.push_back(arc.to);
                    }
                }
            }
            if level[t] == u32::MAX {
                break;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_blocking(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= self.eps {
                    break;
                }
                total += pushed;
                augmentations += 1;
            }
        }
        if telemetry.is_enabled() {
            telemetry.counter("perseus_flow_max_flow_calls_total").inc();
            telemetry
                .counter("perseus_flow_augmenting_paths_total")
                .add(augmentations);
            telemetry
                .counter("perseus_flow_nodes_total")
                .add(self.node_count() as u64);
            telemetry
                .counter("perseus_flow_edges_total")
                .add(self.edge_count() as u64);
        }
        total
    }

    /// One DFS augmentation along the level graph (Dinic inner loop).
    fn dfs_blocking(
        &mut self,
        u: usize,
        t: usize,
        limit: f64,
        level: &[u32],
        iter: &mut [usize],
    ) -> f64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let a = self.adj[u][iter[u]];
            let arc = self.arcs[a];
            if level[arc.to] == level[u] + 1 && self.usable(arc.cap) {
                let pushed = self.dfs_blocking(arc.to, t, limit.min(arc.cap), level, iter);
                if pushed > self.eps {
                    self.arcs[a].cap -= pushed;
                    self.arcs[a ^ 1].cap += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Nodes reachable from `s` in the current residual graph. After
    /// [`FlowGraph::max_flow`], this is the source side of a minimum cut.
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &a in &self.adj[u] {
                let arc = self.arcs[a];
                if !seen[arc.to] && self.usable(arc.cap) {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        seen
    }

    /// Net flow imbalance at node `v` (inflow − outflow over added edges).
    /// Zero (within tolerance) everywhere except `s` and `t` once a flow has
    /// been established. Exposed for verification in tests.
    pub fn imbalance(&self, v: usize) -> f64 {
        let mut x = 0.0;
        for (e, _) in self.init.iter().enumerate() {
            let a = &self.arcs[2 * e];
            let from = self.arcs[2 * e + 1].to;
            if a.to == v {
                x += self.flow_on(e);
            }
            if from == v {
                x -= self.flow_on(e);
            }
        }
        x
    }
}
