//! Residual-pair flow network with Dinic maximum flow.
//!
//! The network is split into an immutable [`FlowTopology`] (adjacency
//! lists, arc heads, initial capacities) and a reusable [`ResidualState`]
//! (current residual capacities plus solver scratch). [`FlowGraph`]
//! composes the two behind the classic mutable-graph API, and adds the
//! incremental entry points the Phillips–Dessouky loop needs: retune a
//! single edge's capacity in place ([`FlowGraph::retune_edge`]) and
//! re-augment from the previous flow instead of from zero
//! ([`FlowGraph::max_flow_incremental`]).

use std::collections::VecDeque;

use perseus_telemetry::Telemetry;

use crate::CAP_EPS;

/// Marker in the drain parent chain for the virtual `s -> t` arc.
const VIRTUAL_ARC: usize = usize::MAX;

/// The structure of a flow network: node adjacency, arc endpoints, and the
/// capacities edges were built (or last retuned) with. Never mutated by a
/// solve — two [`ResidualState`]s over the same topology describe two
/// flows on the same network.
#[derive(Debug, Clone, Default)]
pub struct FlowTopology {
    adj: Vec<Vec<usize>>,
    /// Head node of each arc (`2e` is edge `e` forward, `2e+1` reverse).
    head: Vec<usize>,
    /// Initial forward capacity per edge, indexed by edge handle.
    init_fwd: Vec<f64>,
    /// Initial reverse capacity per edge (nonzero only for residual-pair
    /// edges added via [`FlowGraph::add_edge_with_back`]).
    init_back: Vec<f64>,
}

impl FlowTopology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of added edges (not counting residual reverse arcs).
    pub fn edge_count(&self) -> usize {
        self.init_fwd.len()
    }

    /// Tail node of edge `e`.
    pub fn tail(&self, e: usize) -> usize {
        self.head[2 * e + 1]
    }

    /// Head node of edge `e`.
    pub fn head_of(&self, e: usize) -> usize {
        self.head[2 * e]
    }
}

/// The mutable half of a flow network: residual capacity per arc, the
/// usability threshold, and reusable solver scratch. Detach one with
/// [`FlowGraph::fresh_state`] / [`FlowGraph::swap_state`] to checkpoint a
/// flow and restore it later without reallocating.
#[derive(Debug, Clone, Default)]
pub struct ResidualState {
    /// Residual capacity per arc, aligned with the topology's arcs.
    cap: Vec<f64>,
    /// Absolute usability threshold: [`CAP_EPS`] × the largest capacity
    /// the network has seen (grow-only; incremental solves recompute it
    /// from the current initial capacities instead).
    eps: f64,
    /// Terminals of the most recent solve; excess draining after a
    /// capacity drop needs to know where value can be given back.
    terminals: Option<(usize, usize)>,
    /// Augmenting paths pushed by the most recent solve.
    last_augmentations: u64,
    // --- solver scratch, reused across solves ---
    level: Vec<u32>,
    iter: Vec<usize>,
    queue: VecDeque<usize>,
    parent: Vec<usize>,
}

impl ResidualState {
    /// The absolute capacity-usability threshold currently in force.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Augmenting paths pushed by the most recent solve on this state.
    pub fn last_augmentations(&self) -> u64 {
        self.last_augmentations
    }
}

/// A flow network over nodes `0..n` using the classic residual-pair edge
/// representation: every added edge owns a paired reverse arc, and pushing
/// flow moves capacity between the two.
///
/// Capacities are `f64`; Dinic's algorithm terminates in `O(V²E)` time
/// independent of capacity values, so real-valued capacities are safe.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    topo: FlowTopology,
    state: ResidualState,
}

impl FlowGraph {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            topo: FlowTopology {
                adj: vec![Vec::new(); n],
                head: Vec::new(),
                init_fwd: Vec::new(),
                init_back: Vec::new(),
            },
            state: ResidualState::default(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.topo.node_count()
    }

    /// Number of added edges (not counting residual reverse arcs).
    pub fn edge_count(&self) -> usize {
        self.topo.edge_count()
    }

    /// The immutable structure of this network.
    pub fn topology(&self) -> &FlowTopology {
        &self.topo
    }

    /// The current residual state (read-only; mutate it through the solve
    /// and retune methods so its invariants hold).
    pub fn residual_state(&self) -> &ResidualState {
        &self.state
    }

    /// A fresh state for this topology: residual capacities at their
    /// initial values, no flow routed.
    pub fn fresh_state(&self) -> ResidualState {
        ResidualState {
            cap: self
                .topo
                .init_fwd
                .iter()
                .zip(&self.topo.init_back)
                .flat_map(|(f, b)| [*f, *b])
                .collect(),
            eps: self.state.eps,
            ..ResidualState::default()
        }
    }

    /// Swaps the current residual state with `other` (checkpoint/restore
    /// without reallocating).
    ///
    /// # Panics
    ///
    /// Panics if `other` was built for a different topology (arc count
    /// mismatch).
    pub fn swap_state(&mut self, other: &mut ResidualState) {
        assert_eq!(
            other.cap.len(),
            self.topo.head.len(),
            "residual state belongs to a different topology"
        );
        std::mem::swap(&mut self.state, other);
    }

    /// Resets the residual state to the initial capacities (zero flow),
    /// keeping every allocation.
    pub fn reset_residual(&mut self) {
        for (e, (f, b)) in self
            .topo
            .init_fwd
            .iter()
            .zip(&self.topo.init_back)
            .enumerate()
        {
            self.state.cap[2 * e] = *f;
            self.state.cap[2 * e + 1] = *b;
        }
        self.state.terminals = None;
        self.state.last_augmentations = 0;
    }

    /// Adds a directed edge `u -> v` with capacity `cap` (and a zero-capacity
    /// reverse arc). Returns the edge handle used by [`FlowGraph::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `cap` is negative/NaN.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        self.add_edge_with_back(u, v, cap, 0.0)
    }

    /// Adds a residual pair with nonzero initial capacity in both
    /// directions: `u -> v` with `cap_fwd` and `v -> u` with `cap_back`.
    ///
    /// This directly models an edge of a *residual* network (used by the
    /// second phase of max flow with lower bounds). The returned handle's
    /// [`FlowGraph::flow_on`] reports **net** forward flow, which may be
    /// negative if more flow ended up pushed backward.
    ///
    /// # Panics
    ///
    /// Panics if endpoints are out of range or a capacity is negative/NaN.
    pub fn add_edge_with_back(&mut self, u: usize, v: usize, cap_fwd: f64, cap_back: f64) -> usize {
        assert!(
            u < self.topo.adj.len() && v < self.topo.adj.len(),
            "endpoint out of range"
        );
        assert!(
            cap_fwd >= 0.0 && cap_back >= 0.0,
            "capacities must be non-negative"
        );
        let id = self.topo.init_fwd.len();
        let a = self.topo.head.len();
        self.topo.head.push(v);
        self.topo.head.push(u);
        self.state.cap.push(cap_fwd);
        self.state.cap.push(cap_back);
        self.topo.adj[u].push(a);
        self.topo.adj[v].push(a + 1);
        self.topo.init_fwd.push(cap_fwd);
        self.topo.init_back.push(cap_back);
        let m = cap_fwd.max(cap_back);
        if m.is_finite() && m > self.state.eps / CAP_EPS {
            self.state.eps = m * CAP_EPS;
        }
        id
    }

    /// Net forward flow currently on edge `e` (initial capacity minus
    /// remaining residual capacity).
    pub fn flow_on(&self, e: usize) -> f64 {
        self.topo.init_fwd[e] - self.state.cap[2 * e]
    }

    /// Remaining forward residual capacity of edge `e`.
    pub fn residual_of(&self, e: usize) -> f64 {
        self.state.cap[2 * e]
    }

    fn usable(&self, cap: f64) -> bool {
        cap > self.state.eps
    }

    /// Replaces the forward capacity of edge `e` with `new_cap`, repairing
    /// the residual state in place so the routed flow stays feasible:
    ///
    /// * capacity raised (or still above the carried flow) — the forward
    ///   residual grows/shrinks accordingly, `O(1)`;
    /// * capacity dropped below the carried flow — the flow on `e` is
    ///   clamped to the new capacity and the excess is drained via
    ///   reverse-BFS over flow-carrying residual arcs (rerouting it where
    ///   possible, giving value back to the terminals where not).
    ///
    /// Follow a batch of retunes with [`FlowGraph::max_flow_incremental`]
    /// to re-augment from the repaired flow.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `new_cap` is negative/NaN.
    pub fn retune_edge(&mut self, e: usize, new_cap: f64) {
        let back = self.topo.init_back[e];
        self.retune_edge_with_back(e, new_cap, back);
    }

    /// [`FlowGraph::retune_edge`] for residual-pair edges: replaces both
    /// the forward and reverse initial capacities, draining excess in
    /// whichever direction the carried net flow now overshoots.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or a capacity is negative/NaN.
    pub fn retune_edge_with_back(&mut self, e: usize, new_fwd: f64, new_back: f64) {
        assert!(e < self.topo.init_fwd.len(), "edge out of range");
        assert!(
            new_fwd >= 0.0 && new_back >= 0.0,
            "capacities must be non-negative"
        );
        let f = self.flow_on(e);
        self.topo.init_fwd[e] = new_fwd;
        self.topo.init_back[e] = new_back;
        // Grow-only threshold update mirroring `add_edge_with_back`;
        // `max_flow_incremental` recomputes the exact value before the
        // next solve so warm and cold runs classify arcs identically.
        let m = new_fwd.max(new_back);
        if m.is_finite() && m > self.state.eps / CAP_EPS {
            self.state.eps = m * CAP_EPS;
        }
        let (u, v) = (self.topo.head[2 * e + 1], self.topo.head[2 * e]);
        if f > new_fwd {
            // Forward flow exceeds the new capacity: clamp it to the cap
            // and repair conservation (`u` now over-receives, `v` starves).
            let excess = f - new_fwd;
            self.state.cap[2 * e] = 0.0;
            self.state.cap[2 * e + 1] = new_back + new_fwd;
            self.drain(u, v, excess);
        } else if -f > new_back {
            // Net *backward* flow exceeds the new reverse capacity: the
            // mirror image, with the imbalance roles swapped.
            let excess = -f - new_back;
            self.state.cap[2 * e] = new_fwd + new_back;
            self.state.cap[2 * e + 1] = 0.0;
            self.drain(v, u, excess);
        } else {
            self.state.cap[2 * e] = new_fwd - f;
            self.state.cap[2 * e + 1] = new_back + f;
        }
    }

    /// Restores flow conservation after a clamp left `from` with `amount`
    /// surplus inflow and `to` with the matching deficit: repeatedly BFS a
    /// shortest residual path `from -> to` and push the bottleneck along
    /// it. Paths through real residual arcs reroute the flow; a virtual
    /// `s -> t` arc (the terminals of the last solve) lets the repair
    /// cancel a source-to-`from` prefix and a `to`-to-sink suffix instead,
    /// reducing the flow value, which by flow decomposition is always
    /// sufficient to absorb the remaining excess.
    fn drain(&mut self, from: usize, to: usize, amount: f64) {
        if from == to || amount <= self.state.eps {
            // Self-loop flow never unbalances a node, and sub-epsilon
            // excess is indistinguishable from the float crumbs every
            // solve already tolerates.
            return;
        }
        let (s, t) = self
            .state
            .terminals
            .expect("capacity dropped below a routed flow before any solve");
        let n = self.topo.adj.len();
        let mut remaining = amount;
        while remaining > self.state.eps {
            // BFS recording the arc used to enter each node; `VIRTUAL_ARC`
            // marks the s -> t hop.
            self.state.parent.clear();
            self.state.parent.resize(n, VIRTUAL_ARC);
            self.state.level.clear();
            self.state.level.resize(n, u32::MAX);
            self.state.queue.clear();
            self.state.level[from] = 0;
            self.state.queue.push_back(from);
            let mut found = false;
            'bfs: while let Some(u) = self.state.queue.pop_front() {
                if u == s && self.state.level[t] == u32::MAX && t != from {
                    self.state.level[t] = self.state.level[u] + 1;
                    self.state.parent[t] = VIRTUAL_ARC;
                    if t == to {
                        found = true;
                        break 'bfs;
                    }
                    self.state.queue.push_back(t);
                }
                for i in 0..self.topo.adj[u].len() {
                    let a = self.topo.adj[u][i];
                    let head = self.topo.head[a];
                    if self.state.level[head] == u32::MAX && self.usable(self.state.cap[a]) {
                        self.state.level[head] = self.state.level[u] + 1;
                        self.state.parent[head] = a;
                        if head == to {
                            found = true;
                            break 'bfs;
                        }
                        self.state.queue.push_back(head);
                    }
                }
            }
            if !found {
                // Only float crumbs below the usability threshold remain
                // unroutable; they are within the solver's tolerance.
                break;
            }
            // Walk parents back from `to`, find the bottleneck, apply.
            let mut bottleneck = remaining;
            let mut node = to;
            while node != from {
                let a = self.state.parent[node];
                if a == VIRTUAL_ARC {
                    node = s; // virtual hop: capacity `remaining`, no arc
                } else {
                    bottleneck = bottleneck.min(self.state.cap[a]);
                    node = self.topo.head[a ^ 1];
                }
            }
            let mut node = to;
            while node != from {
                let a = self.state.parent[node];
                if a == VIRTUAL_ARC {
                    node = s;
                } else {
                    self.state.cap[a] -= bottleneck;
                    self.state.cap[a ^ 1] += bottleneck;
                    node = self.topo.head[a ^ 1];
                }
            }
            remaining -= bottleneck;
        }
    }

    /// Recomputes the usability threshold from the *current* initial
    /// capacities, exactly as a from-scratch build over the same edges
    /// would have accumulated it. Retunes only grow the threshold; this
    /// restores the precise value so incremental and cold solves agree on
    /// which residual arcs count as exhausted.
    fn recompute_eps(&mut self) {
        let mut eps = 0.0f64;
        for (f, b) in self.topo.init_fwd.iter().zip(&self.topo.init_back) {
            let m = f.max(*b);
            if m.is_finite() && m > eps / CAP_EPS {
                eps = m * CAP_EPS;
            }
        }
        self.state.eps = eps;
    }

    /// Computes the maximum `s -> t` flow with Dinic's algorithm, mutating the
    /// residual capacities in place. Calling it twice continues from the
    /// current residual state (the second call returns 0 extra flow).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        self.max_flow_with(s, t, &Telemetry::disabled())
    }

    /// [`FlowGraph::max_flow`] with instrumentation: records the number of
    /// calls, the node/edge totals of the solved networks, and the number
    /// of augmenting paths Dinic pushed. With disabled telemetry this is
    /// exactly `max_flow` (a local `u64` increment per augmentation is the
    /// only residue).
    pub fn max_flow_with(&mut self, s: usize, t: usize, telemetry: &Telemetry) -> f64 {
        assert!(s != t, "source and sink must differ");
        assert!(
            s < self.topo.adj.len() && t < self.topo.adj.len(),
            "terminal out of range"
        );
        self.state.terminals = Some((s, t));
        // Dinic's algorithm: repeat { BFS level graph; DFS blocking flow }.
        // Asymptotically O(V²E) and near-linear on the sparse, shallow
        // capacity DAGs Perseus produces — the paper's Edmonds–Karp bound
        // (§4.3 complexity analysis) is an upper bound we comfortably beat.
        let n = self.topo.adj.len();
        let mut total = 0.0;
        let mut augmentations = 0u64;
        let mut level = std::mem::take(&mut self.state.level);
        let mut iter = std::mem::take(&mut self.state.iter);
        let mut queue = std::mem::take(&mut self.state.queue);
        level.clear();
        level.resize(n, u32::MAX);
        iter.clear();
        iter.resize(n, 0);
        loop {
            // BFS: build level graph on usable residual arcs.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            queue.clear();
            level[s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &a in &self.topo.adj[u] {
                    let to = self.topo.head[a];
                    if level[to] == u32::MAX && self.usable(self.state.cap[a]) {
                        level[to] = level[u] + 1;
                        queue.push_back(to);
                    }
                }
            }
            if level[t] == u32::MAX {
                break;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_blocking(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= self.state.eps {
                    break;
                }
                total += pushed;
                augmentations += 1;
            }
        }
        self.state.level = level;
        self.state.iter = iter;
        self.state.queue = queue;
        self.state.last_augmentations = augmentations;
        if telemetry.is_enabled() {
            telemetry.counter("perseus_flow_max_flow_calls_total").inc();
            telemetry
                .counter("perseus_flow_augmenting_paths_total")
                .add(augmentations);
            telemetry
                .counter("perseus_flow_nodes_total")
                .add(self.node_count() as u64);
            telemetry
                .counter("perseus_flow_edges_total")
                .add(self.edge_count() as u64);
        }
        total
    }

    /// Warm-started maximum flow: re-augments from whatever feasible flow
    /// the residual state currently carries (the previous solve, repaired
    /// by any [`FlowGraph::retune_edge`] calls since) instead of starting
    /// from zero. Returns the **total** `s -> t` flow value now routed —
    /// not just the augmentation delta — so callers can compare it
    /// directly against a from-scratch [`FlowGraph::max_flow`].
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow_incremental(&mut self, s: usize, t: usize) -> f64 {
        self.max_flow_incremental_with(s, t, &Telemetry::disabled())
    }

    /// [`FlowGraph::max_flow_incremental`] with instrumentation (see
    /// [`FlowGraph::max_flow_with`]).
    pub fn max_flow_incremental_with(&mut self, s: usize, t: usize, telemetry: &Telemetry) -> f64 {
        // Retunes leave the grow-only threshold potentially stale; restore
        // the exact from-scratch value before augmenting.
        self.recompute_eps();
        let _delta = self.max_flow_with(s, t, telemetry);
        self.flow_value(s)
    }

    /// Net outflow of `s` over the added edges — the value of the flow the
    /// residual state currently carries.
    pub fn flow_value(&self, s: usize) -> f64 {
        let mut v = 0.0;
        for &a in &self.topo.adj[s] {
            let e = a / 2;
            if a % 2 == 0 {
                v += self.flow_on(e);
            } else {
                v -= self.flow_on(e);
            }
        }
        v
    }

    /// Augmenting paths pushed by the most recent solve on this graph.
    pub fn last_augmentations(&self) -> u64 {
        self.state.last_augmentations
    }

    /// One DFS augmentation along the level graph (Dinic inner loop).
    fn dfs_blocking(
        &mut self,
        u: usize,
        t: usize,
        limit: f64,
        level: &[u32],
        iter: &mut [usize],
    ) -> f64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.topo.adj[u].len() {
            let a = self.topo.adj[u][iter[u]];
            let to = self.topo.head[a];
            let cap = self.state.cap[a];
            if level[to] == level[u] + 1 && self.usable(cap) {
                let pushed = self.dfs_blocking(to, t, limit.min(cap), level, iter);
                if pushed > self.state.eps {
                    self.state.cap[a] -= pushed;
                    self.state.cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Nodes reachable from `s` in the current residual graph. After
    /// [`FlowGraph::max_flow`], this is the source side of a minimum cut.
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = Vec::new();
        let mut stack = Vec::new();
        self.residual_reachable_into(s, &mut seen, &mut stack);
        seen
    }

    /// [`FlowGraph::residual_reachable`] into caller-owned scratch buffers
    /// (`seen` is the result; `stack` is the DFS worklist), so hot loops
    /// stop paying two allocations per min-cut extraction.
    pub fn residual_reachable_into(&self, s: usize, seen: &mut Vec<bool>, stack: &mut Vec<usize>) {
        seen.clear();
        seen.resize(self.topo.adj.len(), false);
        stack.clear();
        stack.push(s);
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &a in &self.topo.adj[u] {
                let to = self.topo.head[a];
                if !seen[to] && self.usable(self.state.cap[a]) {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
    }

    /// Net flow imbalance at node `v` (inflow − outflow over added edges).
    /// Zero (within tolerance) everywhere except `s` and `t` once a flow has
    /// been established. Exposed for verification in tests.
    pub fn imbalance(&self, v: usize) -> f64 {
        let mut x = 0.0;
        for e in 0..self.topo.init_fwd.len() {
            let to = self.topo.head[2 * e];
            let from = self.topo.head[2 * e + 1];
            if to == v {
                x += self.flow_on(e);
            }
            if from == v {
                x -= self.flow_on(e);
            }
        }
        x
    }
}
