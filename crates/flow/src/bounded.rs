//! Maximum flow with edge lower bounds — paper Algorithm 3.
//!
//! The Capacity DAG of `GetNextPareto` assigns each critical computation a
//! flow interval `(l, u)` (paper Eq. 8). The Max-Flow Min-Cut theorem still
//! holds with lower bounds (Ford & Fulkerson, ch. 1 §9), so the minimum cut
//! can be recovered after a two-phase reduction:
//!
//! 1. add dummy terminals `s'`, `t'` and a `t -> s` back edge to turn the
//!    bounded problem into a plain circulation feasibility max-flow,
//! 2. if the dummy flow saturates (a feasible flow exists), translate it
//!    back and augment `s -> t` on the residual network.

use std::fmt;

use perseus_telemetry::Telemetry;

use crate::graph::FlowGraph;
use crate::FLOW_EPS;

/// One edge of a bounded flow problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedEdge {
    /// Tail node.
    pub src: usize,
    /// Head node.
    pub dst: usize,
    /// Minimum flow that must pass through this edge.
    pub lower: f64,
    /// Maximum flow this edge admits. Use [`BoundedFlowProblem::unbounded`]
    /// as a stand-in for infinity; the solver substitutes a capacity that
    /// can never bind.
    pub upper: f64,
}

/// Errors from the bounded max-flow solver.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// No feasible flow satisfies all lower bounds.
    Infeasible {
        /// Total lower-bound mass that must be routed.
        required: f64,
        /// Mass the feasibility phase managed to route.
        achieved: f64,
    },
    /// An edge has `lower > upper`, or a negative/NaN bound.
    InvalidBounds { edge: usize },
    /// Source or sink index out of range, or `s == t`.
    InvalidTerminals,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Infeasible { required, achieved } => {
                write!(
                    f,
                    "no feasible flow: routed {achieved} of required {required}"
                )
            }
            FlowError::InvalidBounds { edge } => write!(f, "edge {edge} has invalid bounds"),
            FlowError::InvalidTerminals => write!(f, "invalid source/sink"),
        }
    }
}

impl std::error::Error for FlowError {}

/// A max-flow problem over nodes `0..n` whose edges carry `(lower, upper)`
/// flow bounds.
#[derive(Debug, Clone, Default)]
pub struct BoundedFlowProblem {
    n: usize,
    edges: Vec<BoundedEdge>,
}

/// Solution of a [`BoundedFlowProblem`].
#[derive(Debug, Clone, Default)]
pub struct BoundedFlowSolution {
    /// Flow on each edge, in insertion order. Satisfies
    /// `lower <= flow <= upper` and conservation at non-terminals.
    pub flow: Vec<f64>,
    /// Value of the maximum `s -> t` flow.
    pub value: f64,
    /// `source_side[v]` is true iff `v` lies on the source side of the
    /// minimum cut (reachable from `s` in the final residual network).
    pub source_side: Vec<bool>,
    /// Augmenting paths the solve pushed (both phases of the transform).
    pub augmenting_paths: u64,
}

impl BoundedFlowSolution {
    /// Edges crossing the cut forward (source side -> sink side). In the
    /// Capacity DAG these are the computations to **speed up** by `τ`.
    pub fn forward_cut_edges(&self, problem: &BoundedFlowProblem) -> Vec<usize> {
        let mut out = Vec::new();
        self.forward_cut_edges_into(problem, &mut out);
        out
    }

    /// [`BoundedFlowSolution::forward_cut_edges`] into a caller-owned
    /// scratch buffer, so the Phillips–Dessouky loop stops allocating a
    /// fresh `Vec` per cut.
    pub fn forward_cut_edges_into(&self, problem: &BoundedFlowProblem, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            problem
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| self.source_side[e.src] && !self.source_side[e.dst])
                .map(|(i, _)| i),
        );
    }

    /// Edges crossing the cut backward (sink side -> source side). In the
    /// Capacity DAG these are the computations to **slow down** by `τ`.
    pub fn backward_cut_edges(&self, problem: &BoundedFlowProblem) -> Vec<usize> {
        let mut out = Vec::new();
        self.backward_cut_edges_into(problem, &mut out);
        out
    }

    /// [`BoundedFlowSolution::backward_cut_edges`] into a caller-owned
    /// scratch buffer (see [`BoundedFlowSolution::forward_cut_edges_into`]).
    pub fn backward_cut_edges_into(&self, problem: &BoundedFlowProblem, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            problem
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| !self.source_side[e.src] && self.source_side[e.dst])
                .map(|(i, _)| i),
        );
    }
}

/// Reusable state for warm-started [`BoundedFlowProblem::solve_warm_into`]
/// calls: the translated [`FlowGraph`] of the previous solve plus its
/// topology signature. When consecutive problems share a topology (same
/// node count, same edge endpoints in the same order) and differ only in
/// capacities — exactly the shape of consecutive Phillips–Dessouky
/// iterations — the cached graph is retuned in place and re-augmented
/// from the previous flow instead of rebuilt and solved from zero.
#[derive(Debug, Default)]
pub struct WarmStart {
    g2: Option<FlowGraph>,
    sig_n: usize,
    /// `(src, dst)` of every edge the cached graph was built for.
    sig: Vec<(usize, usize)>,
    seen: Vec<bool>,
    stack: Vec<usize>,
    /// Solves that reused the cached flow.
    pub hits: u64,
    /// Solves that (re)built the graph from scratch.
    pub misses: u64,
}

impl WarmStart {
    /// An empty handle; the first solve through it is always cold.
    pub fn new() -> WarmStart {
        WarmStart::default()
    }

    /// Drops the cached graph so the next solve rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.g2 = None;
        self.sig.clear();
        self.sig_n = 0;
    }

    fn matches(&self, problem: &BoundedFlowProblem) -> bool {
        self.g2.is_some()
            && self.sig_n == problem.n
            && self.sig.len() == problem.edges.len()
            && self
                .sig
                .iter()
                .zip(&problem.edges)
                .all(|(sig, e)| *sig == (e.src, e.dst))
    }
}

impl BoundedFlowProblem {
    /// Creates an empty problem over `n` nodes.
    pub fn new(n: usize) -> Self {
        BoundedFlowProblem {
            n,
            edges: Vec::new(),
        }
    }

    /// Sentinel upper bound meaning "unconstrained". The solver replaces it
    /// with a finite capacity exceeding any possible flow, so min-cut sides
    /// never include such an edge in a finite cut.
    pub fn unbounded() -> f64 {
        f64::INFINITY
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Edges added so far.
    pub fn edges(&self) -> &[BoundedEdge] {
        &self.edges
    }

    /// Clears the problem for reuse over `n` nodes, keeping the edge
    /// allocation (arena-style rebuilds in the Phillips–Dessouky loop).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
    }

    /// Adds an edge with bounds `(lower, upper)`; returns its index.
    pub fn add_edge(&mut self, src: usize, dst: usize, lower: f64, upper: f64) -> usize {
        self.edges.push(BoundedEdge {
            src,
            dst,
            lower,
            upper,
        });
        self.edges.len() - 1
    }

    fn validate(&self, s: usize, t: usize) -> Result<(), FlowError> {
        if s >= self.n || t >= self.n || s == t {
            return Err(FlowError::InvalidTerminals);
        }
        for (i, e) in self.edges.iter().enumerate() {
            let bad = e.src >= self.n
                || e.dst >= self.n
                || e.lower.is_nan()
                || e.upper.is_nan()
                || e.lower < 0.0
                || e.lower > e.upper;
            if bad {
                return Err(FlowError::InvalidBounds { edge: i });
            }
        }
        Ok(())
    }

    /// Finite stand-in for infinite capacity: larger than any flow that the
    /// finite edges and lower bounds can carry, but small enough to keep
    /// `f64` arithmetic accurate at the problem's own scale.
    fn big(&self) -> f64 {
        let mut total = 1.0;
        for e in &self.edges {
            total += e.lower;
            if e.upper.is_finite() {
                total += e.upper;
            }
        }
        total * 4.0
    }

    /// Solves max `s -> t` flow subject to the edge bounds and returns the
    /// flow plus the minimum cut.
    ///
    /// # Errors
    ///
    /// [`FlowError::Infeasible`] if the lower bounds admit no feasible flow,
    /// [`FlowError::InvalidBounds`] / [`FlowError::InvalidTerminals`] on
    /// malformed input.
    pub fn solve(&self, s: usize, t: usize) -> Result<BoundedFlowSolution, FlowError> {
        self.solve_with(s, t, &Telemetry::disabled())
    }

    /// [`BoundedFlowProblem::solve`] with instrumentation: counts solves
    /// and infeasibility rejections, and threads `telemetry` into both
    /// inner [`FlowGraph::max_flow_with`] phases.
    pub fn solve_with(
        &self,
        s: usize,
        t: usize,
        telemetry: &Telemetry,
    ) -> Result<BoundedFlowSolution, FlowError> {
        if telemetry.is_enabled() {
            telemetry.counter("perseus_flow_bounded_solves_total").inc();
        }
        self.validate(s, t)?;
        let big = self.big();
        let cap = |u: f64| if u.is_finite() { u } else { big };

        // Phase 1: feasibility via dummy terminals (Algorithm 3 lines 1-10).
        let sp = self.n; // s'
        let tp = self.n + 1; // t'
        let mut g1 = FlowGraph::new(self.n + 2);
        let mut required = 0.0;
        let mut in_lower = vec![0.0f64; self.n];
        let mut out_lower = vec![0.0f64; self.n];
        let mut phase1_edges = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            in_lower[e.dst] += e.lower;
            out_lower[e.src] += e.lower;
            phase1_edges.push(g1.add_edge(e.src, e.dst, cap(e.upper) - e.lower));
        }
        for v in 0..self.n {
            if in_lower[v] > 0.0 {
                g1.add_edge(sp, v, in_lower[v]);
                required += in_lower[v];
            }
            if out_lower[v] > 0.0 {
                g1.add_edge(v, tp, out_lower[v]);
            }
        }
        g1.add_edge(t, s, big);
        let achieved = g1.max_flow_with(sp, tp, telemetry);
        let phase1_paths = g1.last_augmentations();
        // Saturation check (Algorithm 3 line 9), with a relative tolerance.
        let tol = FLOW_EPS * required.max(1.0);
        if achieved + tol < required {
            if telemetry.is_enabled() {
                telemetry.counter("perseus_flow_infeasible_total").inc();
            }
            return Err(FlowError::Infeasible { required, achieved });
        }

        // Phase 2: translate back (f = f' + l) and augment s -> t on the
        // residual network (Algorithm 3 lines 11-16).
        let mut g2 = FlowGraph::new(self.n);
        let mut phase2_edges = Vec::with_capacity(self.edges.len());
        let mut base_flow = Vec::with_capacity(self.edges.len());
        for (i, e) in self.edges.iter().enumerate() {
            let f = g1.flow_on(phase1_edges[i]) + e.lower;
            base_flow.push(f);
            let fwd = (cap(e.upper) - f).max(0.0);
            let back = (f - e.lower).max(0.0);
            phase2_edges.push(g2.add_edge_with_back(e.src, e.dst, fwd, back));
        }
        let extra = g2.max_flow_with(s, t, telemetry);
        let source_side = g2.residual_reachable(s);

        let mut flow = Vec::with_capacity(self.edges.len());
        for (i, e) in self.edges.iter().enumerate() {
            let f = base_flow[i] + g2.flow_on(phase2_edges[i]);
            // Clamp floating-point crumbs back into the bounds.
            flow.push(f.clamp(e.lower, cap(e.upper)));
        }
        // The s -> t value is the net outflow of s.
        let mut value = 0.0;
        for (i, e) in self.edges.iter().enumerate() {
            if e.src == s {
                value += flow[i];
            }
            if e.dst == s {
                value -= flow[i];
            }
        }
        let _ = extra;
        Ok(BoundedFlowSolution {
            flow,
            value,
            source_side,
            augmenting_paths: phase1_paths + g2.last_augmentations(),
        })
    }

    /// [`BoundedFlowProblem::solve_warm_into`] returning a fresh solution
    /// (telemetry disabled).
    pub fn solve_warm(
        &self,
        s: usize,
        t: usize,
        warm: &mut WarmStart,
    ) -> Result<BoundedFlowSolution, FlowError> {
        let mut out = BoundedFlowSolution::default();
        self.solve_warm_into(s, t, warm, &mut out, &Telemetry::disabled())?;
        Ok(out)
    }

    /// Warm-started [`BoundedFlowProblem::solve_with`] writing into a
    /// caller-owned solution. Returns `Ok(true)` when the previous solve's
    /// flow was reused ([`FlowGraph::retune_edge`] +
    /// [`FlowGraph::max_flow_incremental_with`]), `Ok(false)` on a cold
    /// (re)build.
    ///
    /// The fast path requires every lower bound to be zero — then the
    /// feasibility phase of Algorithm 3 trivially routes nothing, the
    /// residual translation is the identity, and the whole solve reduces
    /// to one plain max flow whose graph can persist across calls. That is
    /// exactly the relaxed-lower-bound formulation `cut.rs` uses. Any
    /// nonzero lower bound invalidates the handle and falls back to
    /// [`BoundedFlowProblem::solve_with`].
    ///
    /// The minimal source-side min cut is unique across all maximum flows,
    /// so `out.source_side` (and everything derived from it) is identical
    /// to what the cold path produces; `out.flow`/`out.value` describe a
    /// valid maximum flow but may be a different decomposition of it.
    ///
    /// # Errors
    ///
    /// Same contract as [`BoundedFlowProblem::solve`].
    pub fn solve_warm_into(
        &self,
        s: usize,
        t: usize,
        warm: &mut WarmStart,
        out: &mut BoundedFlowSolution,
        telemetry: &Telemetry,
    ) -> Result<bool, FlowError> {
        if self.edges.iter().any(|e| e.lower != 0.0) {
            warm.invalidate();
            warm.misses += 1;
            *out = self.solve_with(s, t, telemetry)?;
            return Ok(false);
        }
        if telemetry.is_enabled() {
            telemetry.counter("perseus_flow_bounded_solves_total").inc();
        }
        self.validate(s, t)?;
        let big = self.big();
        let cap = |u: f64| if u.is_finite() { u } else { big };

        let hit = warm.matches(self);
        if hit {
            warm.hits += 1;
            let g2 = warm.g2.as_mut().expect("matches() implies a cached graph");
            for (i, e) in self.edges.iter().enumerate() {
                g2.retune_edge(i, cap(e.upper));
            }
            g2.max_flow_incremental_with(s, t, telemetry);
        } else {
            warm.misses += 1;
            let mut g2 = FlowGraph::new(self.n);
            for e in &self.edges {
                g2.add_edge(e.src, e.dst, cap(e.upper));
            }
            g2.max_flow_with(s, t, telemetry);
            warm.sig_n = self.n;
            warm.sig.clear();
            warm.sig.extend(self.edges.iter().map(|e| (e.src, e.dst)));
            warm.g2 = Some(g2);
        }

        let WarmStart {
            g2, seen, stack, ..
        } = warm;
        let g2 = g2.as_ref().expect("graph cached just above");
        g2.residual_reachable_into(s, seen, stack);
        out.source_side.clear();
        out.source_side.extend_from_slice(seen);
        out.flow.clear();
        for (i, e) in self.edges.iter().enumerate() {
            // Clamp floating-point crumbs back into the bounds.
            out.flow.push(g2.flow_on(i).clamp(0.0, cap(e.upper)));
        }
        // The s -> t value is the net outflow of s.
        let mut value = 0.0;
        for (i, e) in self.edges.iter().enumerate() {
            if e.src == s {
                value += out.flow[i];
            }
            if e.dst == s {
                value -= out.flow[i];
            }
        }
        out.value = value;
        out.augmenting_paths = g2.last_augmentations();
        Ok(hit)
    }

    /// Capacity of the cut described by `source_side`: sum of the upper
    /// bounds of forward-crossing edges minus the lower bounds of
    /// backward-crossing edges (the Ford–Fulkerson cut value with lower
    /// bounds). Infinite if a forward edge is unbounded.
    pub fn cut_capacity(&self, source_side: &[bool]) -> f64 {
        let mut c = 0.0;
        for e in &self.edges {
            if source_side[e.src] && !source_side[e.dst] {
                c += e.upper; // may be +inf
            } else if !source_side[e.src] && source_side[e.dst] {
                c -= e.lower;
            }
        }
        c
    }
}
