use crate::{BoundedFlowProblem, FlowError, FlowGraph};

#[test]
fn trivial_single_edge() {
    let mut g = FlowGraph::new(2);
    let e = g.add_edge(0, 1, 5.0);
    assert_eq!(g.max_flow(0, 1), 5.0);
    assert_eq!(g.flow_on(e), 5.0);
    assert_eq!(g.residual_of(e), 0.0);
}

#[test]
fn classic_cormen_network() {
    // CLRS figure 26.1-style network, max flow 23.
    let mut g = FlowGraph::new(6);
    g.add_edge(0, 1, 16.0);
    g.add_edge(0, 2, 13.0);
    g.add_edge(1, 3, 12.0);
    g.add_edge(2, 1, 4.0);
    g.add_edge(2, 4, 14.0);
    g.add_edge(3, 2, 9.0);
    g.add_edge(3, 5, 20.0);
    g.add_edge(4, 3, 7.0);
    g.add_edge(4, 5, 4.0);
    assert_eq!(g.max_flow(0, 5), 23.0);
}

#[test]
fn disconnected_network_zero_flow() {
    let mut g = FlowGraph::new(4);
    g.add_edge(0, 1, 10.0);
    g.add_edge(2, 3, 10.0);
    assert_eq!(g.max_flow(0, 3), 0.0);
}

#[test]
fn min_cut_separates_terminals() {
    let mut g = FlowGraph::new(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 0.5);
    g.add_edge(2, 3, 1.0);
    let f = g.max_flow(0, 3);
    assert_eq!(f, 0.5);
    let side = g.residual_reachable(0);
    assert!(side[0] && side[1]);
    assert!(!side[2] && !side[3]);
}

#[test]
fn repeated_max_flow_is_idempotent() {
    let mut g = FlowGraph::new(3);
    g.add_edge(0, 1, 2.0);
    g.add_edge(1, 2, 3.0);
    assert_eq!(g.max_flow(0, 2), 2.0);
    assert_eq!(g.max_flow(0, 2), 0.0);
}

#[test]
fn fractional_capacities() {
    let mut g = FlowGraph::new(3);
    g.add_edge(0, 1, 0.125);
    g.add_edge(0, 1, 0.375);
    g.add_edge(1, 2, 10.0);
    assert!((g.max_flow(0, 2) - 0.5).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "source and sink must differ")]
fn same_terminals_panic() {
    let mut g = FlowGraph::new(2);
    g.max_flow(1, 1);
}

#[test]
#[should_panic(expected = "capacities must be non-negative")]
fn negative_capacity_panics() {
    let mut g = FlowGraph::new(2);
    g.add_edge(0, 1, -1.0);
}

// ---- bounded flow ----

#[test]
fn bounded_no_lower_bounds_matches_plain() {
    let mut p = BoundedFlowProblem::new(4);
    p.add_edge(0, 1, 0.0, 3.0);
    p.add_edge(0, 2, 0.0, 2.0);
    p.add_edge(1, 3, 0.0, 2.0);
    p.add_edge(2, 3, 0.0, 3.0);
    let sol = p.solve(0, 3).unwrap();
    assert!((sol.value - 4.0).abs() < 1e-9);
}

#[test]
fn bounded_lower_bound_forces_flow() {
    // Path s -> a -> t, with s->a requiring at least 2 units.
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 2.0, 5.0);
    p.add_edge(1, 2, 0.0, 10.0);
    let sol = p.solve(0, 2).unwrap();
    assert!(sol.flow[0] >= 2.0 - 1e-9);
    assert!((sol.value - 5.0).abs() < 1e-9);
}

#[test]
fn bounded_infeasible_detected() {
    // s -> a must carry >= 5 but a -> t can carry at most 1.
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 5.0, 6.0);
    p.add_edge(1, 2, 0.0, 1.0);
    match p.solve(0, 2) {
        Err(FlowError::Infeasible { .. }) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn bounded_invalid_bounds_detected() {
    let mut p = BoundedFlowProblem::new(2);
    p.add_edge(0, 1, 3.0, 1.0);
    assert!(matches!(
        p.solve(0, 1),
        Err(FlowError::InvalidBounds { edge: 0 })
    ));
}

#[test]
fn bounded_invalid_terminals() {
    let p = BoundedFlowProblem::new(2);
    assert!(matches!(p.solve(0, 0), Err(FlowError::InvalidTerminals)));
    assert!(matches!(p.solve(0, 9), Err(FlowError::InvalidTerminals)));
}

#[test]
fn bounded_unbounded_edge_never_in_cut() {
    // Two parallel paths; one has an unbounded edge, so the min cut must
    // cross the other.
    let inf = BoundedFlowProblem::unbounded();
    let mut p = BoundedFlowProblem::new(4);
    let _a = p.add_edge(0, 1, 0.0, inf);
    let _b = p.add_edge(1, 3, 0.0, 4.0);
    let _c = p.add_edge(0, 2, 0.0, 1.0);
    let _d = p.add_edge(2, 3, 0.0, inf);
    let sol = p.solve(0, 3).unwrap();
    assert!((sol.value - 5.0).abs() < 1e-9);
    let fwd = sol.forward_cut_edges(&p);
    for &e in &fwd {
        assert!(
            p.edges()[e].upper.is_finite(),
            "cut crossed an unbounded edge"
        );
    }
    assert!(p.cut_capacity(&sol.source_side).is_finite());
}

#[test]
fn bounded_backward_cut_edge_reported() {
    // s -> a (cap 2), a -> t (cap 10), plus a forced edge t -> a with
    // lower bound 1 fed back by... simpler: two nodes between which a
    // forced reverse edge crosses the natural cut.
    //
    //   s --(0,1)--> a --(0,10)--> t
    //   s --(0,10)-> b --(0,1)--> t
    //   b --(1,2)--> a          (forced; crosses back over the {s,b}|{a,t} cut)
    let mut p = BoundedFlowProblem::new(4);
    let (s, a, b, t) = (0, 1, 2, 3);
    p.add_edge(s, a, 0.0, 1.0);
    p.add_edge(a, t, 0.0, 10.0);
    p.add_edge(s, b, 0.0, 10.0);
    p.add_edge(b, t, 0.0, 1.0);
    let forced = p.add_edge(b, a, 1.0, 2.0);
    let sol = p.solve(s, t).unwrap();
    assert!(sol.flow[forced] >= 1.0 - 1e-9);
    // Max flow: s->a->t carries 1, s->b->t carries 1, s->b->a->t carries
    // up to 2 through the forced edge: total 4.
    assert!((sol.value - 4.0).abs() < 1e-6, "value = {}", sol.value);
}

#[test]
fn bounded_flow_conservation() {
    let inf = BoundedFlowProblem::unbounded();
    let mut p = BoundedFlowProblem::new(5);
    p.add_edge(0, 1, 1.0, 4.0);
    p.add_edge(0, 2, 0.0, 3.0);
    p.add_edge(1, 3, 0.5, inf);
    p.add_edge(2, 3, 0.0, 2.0);
    p.add_edge(1, 2, 0.0, 1.0);
    p.add_edge(3, 4, 0.0, 6.0);
    let sol = p.solve(0, 4).unwrap();
    // Conservation at internal nodes.
    for v in 1..4 {
        let mut net = 0.0;
        for (i, e) in p.edges().iter().enumerate() {
            if e.dst == v {
                net += sol.flow[i];
            }
            if e.src == v {
                net -= sol.flow[i];
            }
        }
        assert!(net.abs() < 1e-6, "conservation violated at {v}: {net}");
    }
    // Bounds respected.
    for (i, e) in p.edges().iter().enumerate() {
        assert!(sol.flow[i] >= e.lower - 1e-9);
        assert!(sol.flow[i] <= e.upper + 1e-9);
    }
}

#[test]
fn bounded_value_equals_cut_capacity() {
    let mut p = BoundedFlowProblem::new(4);
    p.add_edge(0, 1, 0.0, 3.0);
    p.add_edge(0, 2, 1.0, 2.0);
    p.add_edge(1, 3, 0.0, 2.0);
    p.add_edge(2, 3, 0.0, 3.0);
    p.add_edge(1, 2, 0.0, 1.0);
    let sol = p.solve(0, 3).unwrap();
    let cut = p.cut_capacity(&sol.source_side);
    assert!(
        (sol.value - cut).abs() < 1e-6,
        "value {} != cut {}",
        sol.value,
        cut
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Net {
        n: usize,
        edges: Vec<(usize, usize, f64)>,
    }

    fn arb_net() -> impl Strategy<Value = Net> {
        (
            3usize..10,
            proptest::collection::vec((any::<u16>(), any::<u16>(), 0.1f64..8.0), 2..40),
        )
            .prop_map(|(n, raw)| {
                let edges = raw
                    .into_iter()
                    .map(|(a, b, c)| ((a as usize) % n, (b as usize) % n, c))
                    .filter(|(a, b, _)| a != b)
                    .collect();
                Net { n, edges }
            })
    }

    proptest! {
        #[test]
        fn maxflow_equals_mincut(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            for &(u, v, c) in &net.edges { g.add_edge(u, v, c); }
            let f = g.max_flow(0, net.n - 1);
            let side = g.residual_reachable(0);
            prop_assert!(side[0]);
            prop_assert!(!side[net.n - 1]);
            let cut: f64 = net
                .edges
                .iter()
                .filter(|&&(u, v, _)| side[u] && !side[v])
                .map(|&(_, _, c)| c)
                .sum();
            prop_assert!((f - cut).abs() < 1e-6, "flow {} cut {}", f, cut);
        }

        #[test]
        fn flow_conservation_holds(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            let handles: Vec<usize> = net.edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
            let _ = g.max_flow(0, net.n - 1);
            for v in 1..net.n - 1 {
                let mut imb = 0.0;
                for (i, &(u, w, _)) in net.edges.iter().enumerate() {
                    if w == v { imb += g.flow_on(handles[i]); }
                    if u == v { imb -= g.flow_on(handles[i]); }
                }
                prop_assert!(imb.abs() < 1e-6);
            }
        }

        #[test]
        fn flows_within_capacity(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            let handles: Vec<usize> = net.edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
            let _ = g.max_flow(0, net.n - 1);
            for (i, &(_, _, c)) in net.edges.iter().enumerate() {
                let f = g.flow_on(handles[i]);
                prop_assert!(f >= -1e-9 && f <= c + 1e-9);
            }
        }

        #[test]
        fn bounded_with_zero_lowers_matches_plain(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            for &(u, v, c) in &net.edges { g.add_edge(u, v, c); }
            let plain = g.max_flow(0, net.n - 1);

            let mut p = BoundedFlowProblem::new(net.n);
            for &(u, v, c) in &net.edges { p.add_edge(u, v, 0.0, c); }
            let sol = p.solve(0, net.n - 1).unwrap();
            prop_assert!((sol.value - plain).abs() < 1e-6);
        }

        #[test]
        fn bounded_small_lowers_feasible_and_consistent(net in arb_net()) {
            // Lower bounds of 0 except tiny ones on edges out of the source,
            // which are always feasible when the source has outgoing capacity
            // to... not necessarily; accept either outcome but verify
            // consistency when feasible.
            let mut p = BoundedFlowProblem::new(net.n);
            for &(u, v, c) in &net.edges {
                let lower = if u == 0 { (c * 0.1).min(0.2) } else { 0.0 };
                p.add_edge(u, v, lower, c);
            }
            if let Ok(sol) = p.solve(0, net.n - 1) {
                for (i, e) in p.edges().iter().enumerate() {
                    prop_assert!(sol.flow[i] >= e.lower - 1e-9);
                    prop_assert!(sol.flow[i] <= e.upper + 1e-9);
                }
                for v in 1..net.n - 1 {
                    let mut imb = 0.0;
                    for (i, e) in p.edges().iter().enumerate() {
                        if e.dst == v { imb += sol.flow[i]; }
                        if e.src == v { imb -= sol.flow[i]; }
                    }
                    prop_assert!(imb.abs() < 1e-6);
                }
                prop_assert!(sol.source_side[0]);
                prop_assert!(!sol.source_side[net.n - 1]);
            }
        }
    }
}

#[test]
fn dinic_handles_deep_serial_chains() {
    // Pipeline-shaped: a 5k-edge chain with a single bottleneck.
    let n = 5001;
    let mut g = FlowGraph::new(n);
    for i in 0..n - 1 {
        let cap = if i == 2500 { 1.5 } else { 10.0 };
        g.add_edge(i, i + 1, cap);
    }
    assert_eq!(g.max_flow(0, n - 1), 1.5);
    let side = g.residual_reachable(0);
    assert!(side[2500] && !side[2501], "cut must fall at the bottleneck");
}

#[test]
fn parallel_multi_edges_accumulate() {
    let mut g = FlowGraph::new(2);
    for _ in 0..50 {
        g.add_edge(0, 1, 0.1);
    }
    assert!((g.max_flow(0, 1) - 5.0).abs() < 1e-9);
}

#[test]
fn bounded_zero_capacity_edges_are_legal() {
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 0.0, 0.0);
    p.add_edge(1, 2, 0.0, 5.0);
    let sol = p.solve(0, 2).unwrap();
    assert_eq!(sol.value, 0.0);
    assert!(sol.source_side[0]);
}
