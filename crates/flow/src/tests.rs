use crate::{BoundedFlowProblem, FlowError, FlowGraph, WarmStart};

#[test]
fn trivial_single_edge() {
    let mut g = FlowGraph::new(2);
    let e = g.add_edge(0, 1, 5.0);
    assert_eq!(g.max_flow(0, 1), 5.0);
    assert_eq!(g.flow_on(e), 5.0);
    assert_eq!(g.residual_of(e), 0.0);
}

#[test]
fn classic_cormen_network() {
    // CLRS figure 26.1-style network, max flow 23.
    let mut g = FlowGraph::new(6);
    g.add_edge(0, 1, 16.0);
    g.add_edge(0, 2, 13.0);
    g.add_edge(1, 3, 12.0);
    g.add_edge(2, 1, 4.0);
    g.add_edge(2, 4, 14.0);
    g.add_edge(3, 2, 9.0);
    g.add_edge(3, 5, 20.0);
    g.add_edge(4, 3, 7.0);
    g.add_edge(4, 5, 4.0);
    assert_eq!(g.max_flow(0, 5), 23.0);
}

#[test]
fn disconnected_network_zero_flow() {
    let mut g = FlowGraph::new(4);
    g.add_edge(0, 1, 10.0);
    g.add_edge(2, 3, 10.0);
    assert_eq!(g.max_flow(0, 3), 0.0);
}

#[test]
fn min_cut_separates_terminals() {
    let mut g = FlowGraph::new(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 0.5);
    g.add_edge(2, 3, 1.0);
    let f = g.max_flow(0, 3);
    assert_eq!(f, 0.5);
    let side = g.residual_reachable(0);
    assert!(side[0] && side[1]);
    assert!(!side[2] && !side[3]);
}

#[test]
fn repeated_max_flow_is_idempotent() {
    let mut g = FlowGraph::new(3);
    g.add_edge(0, 1, 2.0);
    g.add_edge(1, 2, 3.0);
    assert_eq!(g.max_flow(0, 2), 2.0);
    assert_eq!(g.max_flow(0, 2), 0.0);
}

#[test]
fn fractional_capacities() {
    let mut g = FlowGraph::new(3);
    g.add_edge(0, 1, 0.125);
    g.add_edge(0, 1, 0.375);
    g.add_edge(1, 2, 10.0);
    assert!((g.max_flow(0, 2) - 0.5).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "source and sink must differ")]
fn same_terminals_panic() {
    let mut g = FlowGraph::new(2);
    g.max_flow(1, 1);
}

#[test]
#[should_panic(expected = "capacities must be non-negative")]
fn negative_capacity_panics() {
    let mut g = FlowGraph::new(2);
    g.add_edge(0, 1, -1.0);
}

// ---- bounded flow ----

#[test]
fn bounded_no_lower_bounds_matches_plain() {
    let mut p = BoundedFlowProblem::new(4);
    p.add_edge(0, 1, 0.0, 3.0);
    p.add_edge(0, 2, 0.0, 2.0);
    p.add_edge(1, 3, 0.0, 2.0);
    p.add_edge(2, 3, 0.0, 3.0);
    let sol = p.solve(0, 3).unwrap();
    assert!((sol.value - 4.0).abs() < 1e-9);
}

#[test]
fn bounded_lower_bound_forces_flow() {
    // Path s -> a -> t, with s->a requiring at least 2 units.
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 2.0, 5.0);
    p.add_edge(1, 2, 0.0, 10.0);
    let sol = p.solve(0, 2).unwrap();
    assert!(sol.flow[0] >= 2.0 - 1e-9);
    assert!((sol.value - 5.0).abs() < 1e-9);
}

#[test]
fn bounded_infeasible_detected() {
    // s -> a must carry >= 5 but a -> t can carry at most 1.
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 5.0, 6.0);
    p.add_edge(1, 2, 0.0, 1.0);
    match p.solve(0, 2) {
        Err(FlowError::Infeasible { .. }) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn bounded_invalid_bounds_detected() {
    let mut p = BoundedFlowProblem::new(2);
    p.add_edge(0, 1, 3.0, 1.0);
    assert!(matches!(
        p.solve(0, 1),
        Err(FlowError::InvalidBounds { edge: 0 })
    ));
}

#[test]
fn bounded_invalid_terminals() {
    let p = BoundedFlowProblem::new(2);
    assert!(matches!(p.solve(0, 0), Err(FlowError::InvalidTerminals)));
    assert!(matches!(p.solve(0, 9), Err(FlowError::InvalidTerminals)));
}

#[test]
fn bounded_unbounded_edge_never_in_cut() {
    // Two parallel paths; one has an unbounded edge, so the min cut must
    // cross the other.
    let inf = BoundedFlowProblem::unbounded();
    let mut p = BoundedFlowProblem::new(4);
    let _a = p.add_edge(0, 1, 0.0, inf);
    let _b = p.add_edge(1, 3, 0.0, 4.0);
    let _c = p.add_edge(0, 2, 0.0, 1.0);
    let _d = p.add_edge(2, 3, 0.0, inf);
    let sol = p.solve(0, 3).unwrap();
    assert!((sol.value - 5.0).abs() < 1e-9);
    let fwd = sol.forward_cut_edges(&p);
    for &e in &fwd {
        assert!(
            p.edges()[e].upper.is_finite(),
            "cut crossed an unbounded edge"
        );
    }
    assert!(p.cut_capacity(&sol.source_side).is_finite());
}

#[test]
fn bounded_backward_cut_edge_reported() {
    // s -> a (cap 2), a -> t (cap 10), plus a forced edge t -> a with
    // lower bound 1 fed back by... simpler: two nodes between which a
    // forced reverse edge crosses the natural cut.
    //
    //   s --(0,1)--> a --(0,10)--> t
    //   s --(0,10)-> b --(0,1)--> t
    //   b --(1,2)--> a          (forced; crosses back over the {s,b}|{a,t} cut)
    let mut p = BoundedFlowProblem::new(4);
    let (s, a, b, t) = (0, 1, 2, 3);
    p.add_edge(s, a, 0.0, 1.0);
    p.add_edge(a, t, 0.0, 10.0);
    p.add_edge(s, b, 0.0, 10.0);
    p.add_edge(b, t, 0.0, 1.0);
    let forced = p.add_edge(b, a, 1.0, 2.0);
    let sol = p.solve(s, t).unwrap();
    assert!(sol.flow[forced] >= 1.0 - 1e-9);
    // Max flow: s->a->t carries 1, s->b->t carries 1, s->b->a->t carries
    // up to 2 through the forced edge: total 4.
    assert!((sol.value - 4.0).abs() < 1e-6, "value = {}", sol.value);
}

#[test]
fn bounded_flow_conservation() {
    let inf = BoundedFlowProblem::unbounded();
    let mut p = BoundedFlowProblem::new(5);
    p.add_edge(0, 1, 1.0, 4.0);
    p.add_edge(0, 2, 0.0, 3.0);
    p.add_edge(1, 3, 0.5, inf);
    p.add_edge(2, 3, 0.0, 2.0);
    p.add_edge(1, 2, 0.0, 1.0);
    p.add_edge(3, 4, 0.0, 6.0);
    let sol = p.solve(0, 4).unwrap();
    // Conservation at internal nodes.
    for v in 1..4 {
        let mut net = 0.0;
        for (i, e) in p.edges().iter().enumerate() {
            if e.dst == v {
                net += sol.flow[i];
            }
            if e.src == v {
                net -= sol.flow[i];
            }
        }
        assert!(net.abs() < 1e-6, "conservation violated at {v}: {net}");
    }
    // Bounds respected.
    for (i, e) in p.edges().iter().enumerate() {
        assert!(sol.flow[i] >= e.lower - 1e-9);
        assert!(sol.flow[i] <= e.upper + 1e-9);
    }
}

#[test]
fn bounded_value_equals_cut_capacity() {
    let mut p = BoundedFlowProblem::new(4);
    p.add_edge(0, 1, 0.0, 3.0);
    p.add_edge(0, 2, 1.0, 2.0);
    p.add_edge(1, 3, 0.0, 2.0);
    p.add_edge(2, 3, 0.0, 3.0);
    p.add_edge(1, 2, 0.0, 1.0);
    let sol = p.solve(0, 3).unwrap();
    let cut = p.cut_capacity(&sol.source_side);
    assert!(
        (sol.value - cut).abs() < 1e-6,
        "value {} != cut {}",
        sol.value,
        cut
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Net {
        n: usize,
        edges: Vec<(usize, usize, f64)>,
    }

    fn arb_net() -> impl Strategy<Value = Net> {
        (
            3usize..10,
            proptest::collection::vec((any::<u16>(), any::<u16>(), 0.1f64..8.0), 2..40),
        )
            .prop_map(|(n, raw)| {
                let edges = raw
                    .into_iter()
                    .map(|(a, b, c)| ((a as usize) % n, (b as usize) % n, c))
                    .filter(|(a, b, _)| a != b)
                    .collect();
                Net { n, edges }
            })
    }

    proptest! {
        #[test]
        fn maxflow_equals_mincut(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            for &(u, v, c) in &net.edges { g.add_edge(u, v, c); }
            let f = g.max_flow(0, net.n - 1);
            let side = g.residual_reachable(0);
            prop_assert!(side[0]);
            prop_assert!(!side[net.n - 1]);
            let cut: f64 = net
                .edges
                .iter()
                .filter(|&&(u, v, _)| side[u] && !side[v])
                .map(|&(_, _, c)| c)
                .sum();
            prop_assert!((f - cut).abs() < 1e-6, "flow {} cut {}", f, cut);
        }

        #[test]
        fn flow_conservation_holds(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            let handles: Vec<usize> = net.edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
            let _ = g.max_flow(0, net.n - 1);
            for v in 1..net.n - 1 {
                let mut imb = 0.0;
                for (i, &(u, w, _)) in net.edges.iter().enumerate() {
                    if w == v { imb += g.flow_on(handles[i]); }
                    if u == v { imb -= g.flow_on(handles[i]); }
                }
                prop_assert!(imb.abs() < 1e-6);
            }
        }

        #[test]
        fn flows_within_capacity(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            let handles: Vec<usize> = net.edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
            let _ = g.max_flow(0, net.n - 1);
            for (i, &(_, _, c)) in net.edges.iter().enumerate() {
                let f = g.flow_on(handles[i]);
                prop_assert!(f >= -1e-9 && f <= c + 1e-9);
            }
        }

        // Tentpole invariant: after an arbitrary sequence of `retune_edge`
        // calls (raises and drops interleaved with re-solves),
        // `max_flow_incremental` agrees with a from-scratch `max_flow` on
        // the final capacities — min-cut side bit-equal, value within the
        // solver's own tolerance (different augmentation orders sum the
        // same flow in different f64 orders).
        #[test]
        fn incremental_retunes_match_scratch(
            net in arb_net(),
            retunes in proptest::collection::vec((any::<u16>(), 0.0f64..8.0, any::<bool>()), 1..30),
        ) {
            prop_assume!(!net.edges.is_empty());
            let (s, t) = (0, net.n - 1);
            let mut g = FlowGraph::new(net.n);
            let handles: Vec<usize> =
                net.edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
            g.max_flow(s, t);

            let mut caps: Vec<f64> = net.edges.iter().map(|&(_, _, c)| c).collect();
            for &(which, new_cap, resolve) in &retunes {
                let e = (which as usize) % handles.len();
                caps[e] = new_cap;
                g.retune_edge(handles[e], new_cap);
                if resolve {
                    g.max_flow_incremental(s, t);
                }
            }
            let warm_value = g.max_flow_incremental(s, t);
            let warm_side = g.residual_reachable(s);

            let mut cold = FlowGraph::new(net.n);
            for (&(u, v, _), &c) in net.edges.iter().zip(&caps) {
                cold.add_edge(u, v, c);
            }
            let cold_value = cold.max_flow(s, t);
            let scale = cold_value.abs().max(1.0);
            prop_assert!(
                (warm_value - cold_value).abs() < 1e-9 * scale,
                "warm {} cold {}", warm_value, cold_value
            );
            prop_assert_eq!(warm_side, cold.residual_reachable(s));
            // The repaired flow is itself feasible and conserved.
            for v in 1..net.n - 1 {
                prop_assert!(g.imbalance(v).abs() < 1e-6 * scale);
            }
            for (&h, &c) in handles.iter().zip(&caps) {
                let f = g.flow_on(h);
                prop_assert!(f >= -1e-9 && f <= c + 1e-9 * scale.max(c));
            }
        }

        // Warm-started bounded solves over a capacity-drift sequence stay
        // bit-identical to cold solves on the min-cut side.
        #[test]
        fn warm_bounded_sequence_matches_cold(
            net in arb_net(),
            scales in proptest::collection::vec(
                proptest::collection::vec(0.05f64..2.0, 1..8), 1..6),
        ) {
            prop_assume!(!net.edges.is_empty());
            let (s, t) = (0, net.n - 1);
            let mut warm = WarmStart::new();
            let mut sol = crate::BoundedFlowSolution::default();
            let tel = perseus_telemetry::Telemetry::disabled();
            for round in &scales {
                let mut p = BoundedFlowProblem::new(net.n);
                for (i, &(u, v, c)) in net.edges.iter().enumerate() {
                    p.add_edge(u, v, 0.0, c * round[i % round.len()]);
                }
                p.solve_warm_into(s, t, &mut warm, &mut sol, &tel).unwrap();
                let cold = p.solve(s, t).unwrap();
                prop_assert_eq!(&sol.source_side, &cold.source_side);
                let scale = cold.value.abs().max(1.0);
                prop_assert!((sol.value - cold.value).abs() < 1e-9 * scale);
            }
            prop_assert_eq!(warm.hits + warm.misses, scales.len() as u64);
        }

        #[test]
        fn bounded_with_zero_lowers_matches_plain(net in arb_net()) {
            let mut g = FlowGraph::new(net.n);
            for &(u, v, c) in &net.edges { g.add_edge(u, v, c); }
            let plain = g.max_flow(0, net.n - 1);

            let mut p = BoundedFlowProblem::new(net.n);
            for &(u, v, c) in &net.edges { p.add_edge(u, v, 0.0, c); }
            let sol = p.solve(0, net.n - 1).unwrap();
            prop_assert!((sol.value - plain).abs() < 1e-6);
        }

        #[test]
        fn bounded_small_lowers_feasible_and_consistent(net in arb_net()) {
            // Lower bounds of 0 except tiny ones on edges out of the source,
            // which are always feasible when the source has outgoing capacity
            // to... not necessarily; accept either outcome but verify
            // consistency when feasible.
            let mut p = BoundedFlowProblem::new(net.n);
            for &(u, v, c) in &net.edges {
                let lower = if u == 0 { (c * 0.1).min(0.2) } else { 0.0 };
                p.add_edge(u, v, lower, c);
            }
            if let Ok(sol) = p.solve(0, net.n - 1) {
                for (i, e) in p.edges().iter().enumerate() {
                    prop_assert!(sol.flow[i] >= e.lower - 1e-9);
                    prop_assert!(sol.flow[i] <= e.upper + 1e-9);
                }
                for v in 1..net.n - 1 {
                    let mut imb = 0.0;
                    for (i, e) in p.edges().iter().enumerate() {
                        if e.dst == v { imb += sol.flow[i]; }
                        if e.src == v { imb -= sol.flow[i]; }
                    }
                    prop_assert!(imb.abs() < 1e-6);
                }
                prop_assert!(sol.source_side[0]);
                prop_assert!(!sol.source_side[net.n - 1]);
            }
        }
    }
}

#[test]
fn dinic_handles_deep_serial_chains() {
    // Pipeline-shaped: a 5k-edge chain with a single bottleneck.
    let n = 5001;
    let mut g = FlowGraph::new(n);
    for i in 0..n - 1 {
        let cap = if i == 2500 { 1.5 } else { 10.0 };
        g.add_edge(i, i + 1, cap);
    }
    assert_eq!(g.max_flow(0, n - 1), 1.5);
    let side = g.residual_reachable(0);
    assert!(side[2500] && !side[2501], "cut must fall at the bottleneck");
}

#[test]
fn parallel_multi_edges_accumulate() {
    let mut g = FlowGraph::new(2);
    for _ in 0..50 {
        g.add_edge(0, 1, 0.1);
    }
    assert!((g.max_flow(0, 1) - 5.0).abs() < 1e-9);
}

// ---- incremental / warm-started solving ----

#[test]
fn retune_raise_then_incremental_finds_more_flow() {
    let mut g = FlowGraph::new(3);
    let a = g.add_edge(0, 1, 2.0);
    g.add_edge(1, 2, 10.0);
    assert_eq!(g.max_flow(0, 2), 2.0);
    g.retune_edge(a, 7.0);
    assert_eq!(g.max_flow_incremental(0, 2), 7.0);
}

#[test]
fn retune_lower_drains_excess() {
    let mut g = FlowGraph::new(3);
    let a = g.add_edge(0, 1, 8.0);
    g.add_edge(1, 2, 10.0);
    assert_eq!(g.max_flow(0, 2), 8.0);
    g.retune_edge(a, 3.0);
    assert_eq!(g.max_flow_incremental(0, 2), 3.0);
    assert!((g.flow_on(a) - 3.0).abs() < 1e-9);
    // Conservation held through the drain.
    assert!(g.imbalance(1).abs() < 1e-9);
}

#[test]
fn retune_lower_reroutes_through_parallel_path() {
    // Two disjoint paths; shrinking one forces the flow onto the other.
    let mut g = FlowGraph::new(4);
    let a = g.add_edge(0, 1, 5.0);
    g.add_edge(1, 3, 5.0);
    g.add_edge(0, 2, 5.0);
    g.add_edge(2, 3, 5.0);
    assert_eq!(g.max_flow(0, 3), 10.0);
    g.retune_edge(a, 1.0);
    assert_eq!(g.max_flow_incremental(0, 3), 6.0);
    for v in 1..3 {
        assert!(g.imbalance(v).abs() < 1e-9, "imbalance at {v}");
    }
}

#[test]
fn retune_to_zero_kills_path() {
    let mut g = FlowGraph::new(3);
    let a = g.add_edge(0, 1, 4.0);
    g.add_edge(1, 2, 4.0);
    assert_eq!(g.max_flow(0, 2), 4.0);
    g.retune_edge(a, 0.0);
    assert_eq!(g.max_flow_incremental(0, 2), 0.0);
}

#[test]
fn incremental_matches_scratch_min_cut() {
    let mut g = FlowGraph::new(6);
    let caps = [16.0, 13.0, 12.0, 4.0, 14.0, 9.0, 20.0, 7.0, 4.0];
    let ends = [
        (0, 1),
        (0, 2),
        (1, 3),
        (2, 1),
        (2, 4),
        (3, 2),
        (3, 5),
        (4, 3),
        (4, 5),
    ];
    let handles: Vec<usize> = ends
        .iter()
        .zip(&caps)
        .map(|(&(u, v), &c)| g.add_edge(u, v, c))
        .collect();
    g.max_flow(0, 5);
    // Perturb a few capacities, then compare against a cold build.
    let new_caps = [16.0, 6.0, 12.0, 4.0, 14.0, 9.0, 8.0, 7.0, 11.0];
    for (&h, &c) in handles.iter().zip(&new_caps) {
        g.retune_edge(h, c);
    }
    let warm_value = g.max_flow_incremental(0, 5);
    let warm_side = g.residual_reachable(0);

    let mut cold = FlowGraph::new(6);
    for (&(u, v), &c) in ends.iter().zip(&new_caps) {
        cold.add_edge(u, v, c);
    }
    let cold_value = cold.max_flow(0, 5);
    assert!((warm_value - cold_value).abs() < 1e-9);
    assert_eq!(warm_side, cold.residual_reachable(0));
}

#[test]
fn fresh_and_swap_state_checkpoint_flow() {
    let mut g = FlowGraph::new(3);
    g.add_edge(0, 1, 2.0);
    g.add_edge(1, 2, 3.0);
    let mut blank = g.fresh_state();
    assert_eq!(g.max_flow(0, 2), 2.0);
    g.swap_state(&mut blank); // park the solved flow, restore zero flow
    assert_eq!(g.max_flow(0, 2), 2.0);
    g.swap_state(&mut blank); // bring the first solve back
    assert_eq!(g.max_flow(0, 2), 0.0, "flow already routed");
}

#[test]
#[should_panic(expected = "different topology")]
fn swap_state_rejects_foreign_state() {
    let mut g = FlowGraph::new(3);
    g.add_edge(0, 1, 2.0);
    let mut other = FlowGraph::new(3);
    other.add_edge(0, 1, 2.0);
    other.add_edge(1, 2, 2.0);
    let mut st = other.fresh_state();
    g.swap_state(&mut st);
}

#[test]
fn warm_solve_hit_matches_cold_solution() {
    let build = |caps: &[f64]| {
        let mut p = BoundedFlowProblem::new(4);
        p.add_edge(0, 1, 0.0, caps[0]);
        p.add_edge(0, 2, 0.0, caps[1]);
        p.add_edge(1, 3, 0.0, caps[2]);
        p.add_edge(2, 3, 0.0, caps[3]);
        p.add_edge(1, 2, 0.0, caps[4]);
        p
    };
    let mut warm = WarmStart::new();
    let first = build(&[3.0, 2.0, 2.0, 3.0, 1.0]);
    let mut sol = crate::BoundedFlowSolution::default();
    let hit = first
        .solve_warm_into(
            0,
            3,
            &mut warm,
            &mut sol,
            &perseus_telemetry::Telemetry::disabled(),
        )
        .unwrap();
    assert!(!hit, "first solve must be cold");

    let second = build(&[3.0, 0.5, 2.0, 3.0, 1.0]);
    let hit = second
        .solve_warm_into(
            0,
            3,
            &mut warm,
            &mut sol,
            &perseus_telemetry::Telemetry::disabled(),
        )
        .unwrap();
    assert!(hit, "same topology must reuse the cached graph");
    assert_eq!(warm.hits, 1);
    assert_eq!(warm.misses, 1);

    let cold = second.solve(0, 3).unwrap();
    assert_eq!(sol.source_side, cold.source_side);
    assert!((sol.value - cold.value).abs() < 1e-9);
}

#[test]
fn warm_solve_topology_change_is_a_miss() {
    let mut warm = WarmStart::new();
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 0.0, 2.0);
    p.add_edge(1, 2, 0.0, 2.0);
    p.solve_warm(0, 2, &mut warm).unwrap();
    let mut q = BoundedFlowProblem::new(3);
    q.add_edge(0, 1, 0.0, 2.0);
    q.add_edge(0, 2, 0.0, 2.0); // different endpoint
    let mut sol = crate::BoundedFlowSolution::default();
    let hit = q
        .solve_warm_into(
            0,
            2,
            &mut warm,
            &mut sol,
            &perseus_telemetry::Telemetry::disabled(),
        )
        .unwrap();
    assert!(!hit);
    assert_eq!(warm.misses, 2);
}

#[test]
fn warm_solve_nonzero_lower_falls_back() {
    let mut warm = WarmStart::new();
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 1.0, 5.0);
    p.add_edge(1, 2, 0.0, 10.0);
    let sol = p.solve_warm(0, 2, &mut warm).unwrap();
    let cold = p.solve(0, 2).unwrap();
    assert_eq!(sol.source_side, cold.source_side);
    assert!((sol.value - cold.value).abs() < 1e-9);
    assert_eq!(warm.hits, 0);
}

#[test]
fn problem_reset_reuses_allocation() {
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 0.0, 2.0);
    p.add_edge(1, 2, 0.0, 2.0);
    assert!((p.solve(0, 2).unwrap().value - 2.0).abs() < 1e-9);
    p.reset(2);
    p.add_edge(0, 1, 0.0, 7.0);
    assert_eq!(p.node_count(), 2);
    assert!((p.solve(0, 1).unwrap().value - 7.0).abs() < 1e-9);
}

#[test]
fn cut_edges_into_matches_allocating_variants() {
    let mut p = BoundedFlowProblem::new(4);
    p.add_edge(0, 1, 0.0, 1.0);
    p.add_edge(1, 3, 0.0, 10.0);
    p.add_edge(0, 2, 0.0, 10.0);
    p.add_edge(2, 3, 0.0, 1.0);
    p.add_edge(3, 1, 0.0, 4.0);
    let sol = p.solve(0, 3).unwrap();
    let (mut fwd, mut back) = (vec![42], vec![42]);
    sol.forward_cut_edges_into(&p, &mut fwd);
    sol.backward_cut_edges_into(&p, &mut back);
    assert_eq!(fwd, sol.forward_cut_edges(&p));
    assert_eq!(back, sol.backward_cut_edges(&p));
}

#[test]
fn bounded_zero_capacity_edges_are_legal() {
    let mut p = BoundedFlowProblem::new(3);
    p.add_edge(0, 1, 0.0, 0.0);
    p.add_edge(1, 2, 0.0, 5.0);
    let sol = p.solve(0, 2).unwrap();
    assert_eq!(sol.value, 0.0);
    assert!(sol.source_side[0]);
}
