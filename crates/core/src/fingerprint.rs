//! Structural plan fingerprints: the content address of a planning
//! problem.
//!
//! A planner's output depends only on (policy, pipeline DAG, GPU model,
//! profiles, options) — never on the job's name, its tenant, or the order
//! profiles were submitted in (see [`crate::planner`]: every
//! [`crate::PlanOutput`] is `T'`-independent). Two jobs that agree on
//! those five inputs therefore receive bit-identical plans, and a fleet
//! running thousands of structurally equal jobs can pay the frontier
//! solver once and share the artifact.
//!
//! [`plan_fingerprint`] computes that content address: the inputs are
//! serialized through the deterministic [`Persist`] codec (little-endian
//! fixed-width integers, `f64` bit patterns, profile databases sorted by
//! key — so `HashMap` iteration order and insertion order never leak into
//! the bytes) and hashed with FNV-1a over a 128-bit state. Equal inputs
//! give equal fingerprints by construction; the proptests in this crate
//! pin the converse — any single perturbed profile value, DAG edge, GPU
//! parameter, or option flips the fingerprint.

use std::fmt;

use perseus_gpu::{GpuSpec, PowerStateModel};
use perseus_pipeline::{OpKey, PipelineDag};
use perseus_profiler::ProfileDb;
use perseus_store::{ByteReader, ByteWriter, Persist, StoreError};

use crate::frontier::FrontierOptions;

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// The 128-bit structural fingerprint of one planning problem. Equal
/// fingerprints key the same cache line in a [`crate::PlanCache`]; 128
/// bits keep accidental collisions out of reach for any realistic fleet
/// (the birthday bound at 10⁹ distinct structures is ~10⁻²¹).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(pub u128);

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Persist for PlanFingerprint {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64((self.0 >> 64) as u64);
        w.put_u64(self.0 as u64);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let hi = r.get_u64()?;
        let lo = r.get_u64()?;
        Ok(PlanFingerprint(((hi as u128) << 64) | lo as u128))
    }
}

/// FNV-1a over a 128-bit state.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Computes the structural fingerprint of one planning problem.
///
/// `policy` is the planner's stable name ([`crate::Planner::name`];
/// `"perseus"` for the frontier solver) and is part of the hash input so
/// different policies planning the same pipeline never share a cache
/// entry — their outputs differ even when their inputs coincide.
///
/// Invariances, by construction of the canonical encoding:
///
/// * **Job identity** — neither the job name nor any tenant is encoded.
/// * **Submission order** — [`ProfileDb`]'s encoding sorts entries by
///   key, so databases built in any insertion order hash equally.
/// * **Process** — no addresses, timestamps, or map iteration order.
pub fn plan_fingerprint(
    policy: &str,
    pipe: &PipelineDag,
    gpu: &GpuSpec,
    profiles: &ProfileDb<OpKey>,
    opts: &FrontierOptions,
) -> PlanFingerprint {
    plan_fingerprint_with_power(policy, pipe, gpu, profiles, opts, None)
}

/// [`plan_fingerprint`] extended with an optional power-state model — the
/// sixth planning input a joint dynamic+static policy (Kareus) depends on.
///
/// `None` encodes exactly like [`plan_fingerprint`] (no trailing marker),
/// so every existing frequency-only fingerprint is unchanged; `Some`
/// appends a marker byte plus the model's canonical bytes, so two Kareus
/// jobs differing only in sleep-state latencies never share a plan.
pub fn plan_fingerprint_with_power(
    policy: &str,
    pipe: &PipelineDag,
    gpu: &GpuSpec,
    profiles: &ProfileDb<OpKey>,
    opts: &FrontierOptions,
    power: Option<&PowerStateModel>,
) -> PlanFingerprint {
    let mut w = ByteWriter::new();
    w.put_str(policy);
    pipe.encode(&mut w);
    gpu.encode(&mut w);
    profiles.encode(&mut w);
    opts.encode(&mut w);
    if let Some(model) = power {
        w.put_u8(1);
        model.encode(&mut w);
    }
    PlanFingerprint(fnv1a_128(&w.into_bytes()))
}
