//! The unified Perseus error type: every public error enum in the
//! workspace converts into [`Error`] via `From`, so callers that span
//! subsystems (`JobClient`, bench bins, the chaos harness) can use one
//! `Result<_, perseus_core::Error>` instead of stringifying by hand.
//!
//! Crates *below* `perseus-core` in the dependency graph get a concrete
//! variant each; crates above it (`perseus-server`, `perseus-cluster`,
//! `perseus-chaos`) convert through [`Error::Subsystem`] with `From` impls
//! defined next to their own error enums.

use std::fmt;

use perseus_dag::DagError;
use perseus_flow::FlowError;
use perseus_gpu::DeviceError;
use perseus_models::{ModelError, PartitionError};
use perseus_pipeline::ScheduleError;
use perseus_profiler::{FitError, ProfileError};

use crate::context::CoreError;

/// Any error the Perseus workspace can produce.
#[derive(Debug)]
pub enum Error {
    /// Max-flow / min-cut substrate ([`perseus_flow`]).
    Flow(FlowError),
    /// DAG construction or traversal ([`perseus_dag`]).
    Dag(DagError),
    /// Pipeline schedule construction ([`perseus_pipeline`]).
    Schedule(ScheduleError),
    /// Profile database ([`perseus_profiler`]).
    Profile(ProfileError),
    /// Time–energy curve fitting ([`perseus_profiler`]).
    Fit(FitError),
    /// Model partitioning ([`perseus_models`]).
    Partition(PartitionError),
    /// Model specification ([`perseus_models`]).
    Model(ModelError),
    /// Simulated GPU device ([`perseus_gpu`]).
    Device(DeviceError),
    /// Frontier planning ([`crate`]).
    Core(CoreError),
    /// An error from a crate above `perseus-core` in the dependency graph
    /// (server, emulator, chaos); `subsystem` names its origin.
    Subsystem {
        /// Short origin tag, e.g. `"server"` or `"chaos"`.
        subsystem: &'static str,
        /// The boxed source error.
        source: Box<dyn std::error::Error + Send + Sync + 'static>,
    },
}

impl Error {
    /// Wraps an error from a crate that `perseus-core` cannot name
    /// (anything above it in the dependency graph). Used by the `From`
    /// impls those crates define for their own error enums.
    pub fn subsystem(
        subsystem: &'static str,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Error {
        Error::Subsystem {
            subsystem,
            source: Box::new(source),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Flow(e) => write!(f, "flow: {e}"),
            Error::Dag(e) => write!(f, "dag: {e}"),
            Error::Schedule(e) => write!(f, "schedule: {e}"),
            Error::Profile(e) => write!(f, "profile: {e}"),
            Error::Fit(e) => write!(f, "fit: {e}"),
            Error::Partition(e) => write!(f, "partition: {e}"),
            Error::Model(e) => write!(f, "model: {e}"),
            Error::Device(e) => write!(f, "device: {e}"),
            Error::Core(e) => write!(f, "planner: {e}"),
            Error::Subsystem { subsystem, source } => write!(f, "{subsystem}: {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Flow(e) => Some(e),
            Error::Dag(e) => Some(e),
            Error::Schedule(e) => Some(e),
            Error::Profile(e) => Some(e),
            Error::Fit(e) => Some(e),
            Error::Partition(e) => Some(e),
            Error::Model(e) => Some(e),
            Error::Device(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Subsystem { source, .. } => Some(source.as_ref()),
        }
    }
}

macro_rules! from_variant {
    ($($ty:ty => $variant:ident),+ $(,)?) => {
        $(impl From<$ty> for Error {
            fn from(e: $ty) -> Error {
                Error::$variant(e)
            }
        })+
    };
}

from_variant! {
    FlowError => Flow,
    DagError => Dag,
    ScheduleError => Schedule,
    ProfileError => Profile,
    FitError => Fit,
    PartitionError => Partition,
    ModelError => Model,
    DeviceError => Device,
    CoreError => Core,
}
