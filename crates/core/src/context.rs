//! Planning context: the pipeline DAG joined with per-computation profiles
//! and fitted time–energy curves.

use std::fmt;

use perseus_dag::NodeId;
use perseus_gpu::GpuSpec;
use perseus_pipeline::{CompKind, OpKey, PipeNode, PipelineDag};
use perseus_profiler::{ExpFit, FitError, OpProfile, ProfileDb};

/// Per-node planning information resolved from the profiles.
#[derive(Debug, Clone)]
pub struct NodePlanInfo {
    /// Pipeline DAG node this refers to.
    pub node: NodeId,
    /// Profiling key (stage × kind).
    pub key: OpKey,
    /// Shortest achievable duration (max frequency).
    pub t_min: f64,
    /// Duration at the minimum-energy frequency.
    pub t_max: f64,
    /// Fitted continuous time–energy curve.
    pub fit: ExpFit,
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A computation type has no profile.
    MissingProfile {
        /// Stage of the missing profile.
        stage: usize,
        /// Kind of the missing profile.
        kind: CompKind,
    },
    /// The per-stage workload slice does not match the pipeline's virtual
    /// stage count.
    StageCountMismatch {
        /// Workloads the pipeline needs (`n_stages × chunks`).
        expected: usize,
        /// Workloads supplied.
        got: usize,
    },
    /// A profile could not be fitted.
    Fit(FitError),
    /// The frontier has no points (internal invariant breach).
    EmptyFrontier,
    /// A power-state model is invalid for the target GPU (joint
    /// dynamic+static planning).
    PowerState(perseus_gpu::PowerStateError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingProfile { stage, kind } => {
                write!(f, "no profile for stage {stage} {kind}")
            }
            CoreError::StageCountMismatch { expected, got } => {
                write!(f, "need {expected} per-virtual-stage workloads, got {got}")
            }
            CoreError::Fit(e) => write!(f, "profile fit failed: {e}"),
            CoreError::EmptyFrontier => write!(f, "frontier characterization produced no points"),
            CoreError::PowerState(e) => write!(f, "invalid power-state model: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        CoreError::Fit(e)
    }
}

/// Everything the frontier algorithm needs about one pipeline.
#[derive(Debug)]
pub struct PlanContext<'a> {
    /// The pipeline computation DAG.
    pub pipe: &'a PipelineDag,
    /// The GPU the pipeline runs on (supplies `P_blocking`).
    pub gpu: &'a GpuSpec,
    /// Per-computation-type profiles.
    pub profiles: ProfileDb<OpKey>,
    /// Resolved planning info, indexed densely by pipeline DAG node index
    /// (`None` for events and fixed-time nodes).
    pub plan_info: Vec<Option<NodePlanInfo>>,
}

impl<'a> PlanContext<'a> {
    /// Builds a context from an existing profile database (e.g. produced by
    /// the client's online profiler).
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingProfile`] if any (stage, kind) pair that occurs
    /// in the DAG has no profile, [`CoreError::Fit`] if a fit fails.
    pub fn new(
        pipe: &'a PipelineDag,
        gpu: &'a GpuSpec,
        profiles: ProfileDb<OpKey>,
    ) -> Result<PlanContext<'a>, CoreError> {
        let mut plan_info: Vec<Option<NodePlanInfo>> = vec![None; pipe.dag.node_count()];
        // Fits depend only on the (stage, kind) profile, not the node: a
        // pipeline with m microbatches repeats each key m times, so memoize
        // the fit per key instead of re-running the regression per node.
        let mut fits: std::collections::HashMap<OpKey, ExpFit> = std::collections::HashMap::new();
        for (node, comp) in pipe.computations() {
            let key = comp.op_key();
            let profile = profiles.get(&key).ok_or(CoreError::MissingProfile {
                stage: key.stage,
                kind: key.kind,
            })?;
            let fit = match fits.get(&key) {
                Some(fit) => *fit,
                None => {
                    let fit = profile.fit()?;
                    fits.insert(key, fit);
                    fit
                }
            };
            plan_info[node.index()] = Some(NodePlanInfo {
                node,
                key,
                t_min: profile.t_min(),
                t_max: profile.t_max(),
                fit,
            });
        }
        Ok(PlanContext {
            pipe,
            gpu,
            profiles,
            plan_info,
        })
    }

    /// Convenience constructor for emulation: derives noise-free profiles
    /// straight from the GPU model and per-(virtual-)stage workloads
    /// (§6.3's profiling-grounded emulator). `stages` is indexed by the
    /// virtual stage id `chunk · n_stages + stage` (for non-interleaved
    /// schedules that is simply the stage index); recompute reuses the
    /// forward workload.
    ///
    /// # Errors
    ///
    /// [`CoreError::StageCountMismatch`] if `stages` does not cover one
    /// workload per virtual stage; otherwise same as [`PlanContext::new`].
    pub fn from_model_profiles(
        pipe: &'a PipelineDag,
        gpu: &'a GpuSpec,
        stages: &[perseus_models::StageWorkloads],
    ) -> Result<PlanContext<'a>, CoreError> {
        let expected = pipe.n_stages * pipe.chunks();
        if stages.len() != expected {
            return Err(CoreError::StageCountMismatch {
                expected,
                got: stages.len(),
            });
        }
        let mut profiles: ProfileDb<OpKey> = ProfileDb::new();
        let n = pipe.n_stages;
        for (vs, sw) in stages.iter().enumerate() {
            let (stage, chunk) = (vs % n, vs / n);
            profiles.insert(
                OpKey {
                    stage,
                    chunk,
                    kind: CompKind::Forward,
                },
                OpProfile::from_model(gpu, &sw.fwd),
            );
            profiles.insert(
                OpKey {
                    stage,
                    chunk,
                    kind: CompKind::Backward,
                },
                OpProfile::from_model(gpu, &sw.bwd),
            );
            profiles.insert(
                OpKey {
                    stage,
                    chunk,
                    kind: CompKind::Recompute,
                },
                OpProfile::from_model(gpu, &sw.fwd),
            );
        }
        PlanContext::new(pipe, gpu, profiles)
    }

    /// Planning info for `node`, if it is a computation.
    pub fn info(&self, node: NodeId) -> Option<&NodePlanInfo> {
        self.plan_info[node.index()].as_ref()
    }

    /// The profile backing `node`'s computation.
    pub fn profile_of(&self, node: NodeId) -> Option<&OpProfile> {
        self.info(node).and_then(|i| self.profiles.get(&i.key))
    }

    /// Baseline planned durations: every computation at its fastest
    /// (`t_min`); fixed ops at their constant duration.
    pub fn fastest_durations(&self) -> Vec<f64> {
        self.durations_by(|i| i.t_min)
    }

    /// Minimum-energy planned durations: every computation at its
    /// min-energy duration (`t_max`) — Algorithm 1's starting schedule.
    pub fn min_energy_durations(&self) -> Vec<f64> {
        self.durations_by(|i| i.t_max)
    }

    fn durations_by(&self, f: impl Fn(&NodePlanInfo) -> f64) -> Vec<f64> {
        let mut out = vec![0.0; self.pipe.dag.node_count()];
        for id in self.pipe.dag.node_ids() {
            out[id.index()] = match self.pipe.dag.node(id) {
                PipeNode::Comp(_) => f(self.plan_info[id.index()]
                    .as_ref()
                    .expect("comp has plan info")),
                PipeNode::Fixed { time_s, .. } => *time_s,
                _ => 0.0,
            };
        }
        out
    }
}
