//! Perseus core: the "iteration time–energy" Pareto frontier.
//!
//! This crate implements the paper's primary contribution (§4):
//!
//! * **Energy schedules** — planned time and energy for every computation
//!   in the pipeline DAG, realized as per-computation GPU frequencies.
//! * **Iterative frontier discovery** (Algorithm 1) — start from the
//!   minimum-energy schedule (`T*`, every computation at its min-energy
//!   duration), then repeatedly shorten the iteration time by the unit
//!   time `τ` with minimal energy increase until `T_min` is reached.
//! * **`GetNextPareto`** (Algorithm 2, Appendix D) — convert the pipeline
//!   DAG to edge-centric form, keep only critical computations, annotate
//!   flow capacities `(0, e⁺) / (e⁻, ∞) / (e⁻, e⁺)` from the fitted
//!   exponential, and solve a minimum cut (max flow with lower bounds):
//!   forward cut edges speed up by τ, backward cut edges slow down by τ.
//! * **Energy accounting** (Eq. 3/4) — a pipeline's energy is computation
//!   energy plus `P_blocking` times all the time its GPUs spend blocked,
//!   including waiting for a straggler; the frontier is characterized
//!   against the T′-independent part (Eq. 4).
//! * **Straggler reaction** (§3.1) — `T_opt = min(T*, T′)` answered by a
//!   frontier lookup.
//!
//! # Examples
//!
//! ```
//! use perseus_core::{characterize, FrontierOptions, PlanContext};
//! use perseus_gpu::GpuSpec;
//! use perseus_pipeline::{PipelineBuilder, ScheduleKind};
//! use perseus_models::{zoo, min_imbalance_partition};
//!
//! let gpu = GpuSpec::a100_pcie();
//! let model = zoo::gpt3_xl(4);
//! let weights = model.fwd_latency_weights(&gpu);
//! let part = min_imbalance_partition(&weights, 4).unwrap();
//! let stages = model.stage_workloads(&part, &gpu).unwrap();
//! let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 8).build().unwrap();
//! let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
//! let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
//! assert!(frontier.t_min() < frontier.t_star());
//! ```

mod cache;
mod context;
mod cut;
mod energy;
mod error;
mod fingerprint;
mod frontier;
mod ledger;
pub mod parallel;
mod persist;
mod planner;
mod sleep;

pub use cache::{PlanCache, PlanCacheStats};
pub use context::{CoreError, NodePlanInfo, PlanContext};
pub use cut::{
    get_next_pareto, get_next_pareto_arena, get_next_pareto_traced, get_next_pareto_with,
    ArenaStats, CutOutcome, CutSolver, SolverArena,
};
pub use energy::{pipeline_energy, PipelineEnergy};
pub use error::Error;
pub use fingerprint::{plan_fingerprint, plan_fingerprint_with_power, PlanFingerprint};
pub use frontier::{
    characterize, EnergySchedule, FrontierOptions, FrontierPoint, FrontierSolver, ParetoFrontier,
    SolverStats,
};
pub use ledger::{
    attribute_schedule, attribute_schedule_with_sleep, BloatLedger, EnergyBreakdown, EnergyKind,
    ScheduleAttribution,
};
pub use planner::{Perseus, PlanOutput, Planner, PlannerCapabilities};
pub use sleep::{insert_sleep, KareusPlanner, SleepPlan, SleepWindow};

#[cfg(test)]
mod tests;
