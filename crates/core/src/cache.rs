//! The fleet-wide cross-job plan cache: [`PlanOutput`]s keyed by
//! [`PlanFingerprint`].
//!
//! Planning is deterministic in its structural inputs (see
//! [`crate::fingerprint`]), so a fleet of jobs drawn from a handful of
//! (model, stages, schedule, GPU) structures re-derives the same plan
//! over and over. The cache turns that redundancy into a lookup: a
//! fingerprint hit returns the stored plan and skips the frontier solver
//! entirely, extending the per-job `artifact_reuses` machinery of
//! [`crate::FrontierSolver`] fleet-wide.
//!
//! # Semantics
//!
//! * **First insert wins.** Two racing misses for the same fingerprint
//!   both solve; whichever inserts first sticks. Both produced
//!   bit-identical plans (determinism), so the race is observable only in
//!   the counters — never in what a lookup returns.
//! * **Epoch invalidation.** Every entry records the cache epoch it was
//!   inserted in. [`PlanCache::advance_epoch`] opens a new epoch;
//!   [`PlanCache::invalidate_older_than`] drops every entry from epochs
//!   before a floor. A server that re-characterizes a job (fresh profiles
//!   mid-training) targets the stale key directly with
//!   [`PlanCache::invalidate`] — the new profiles hash to a *new*
//!   fingerprint, so the old entry would otherwise linger forever.
//! * **Durability.** A cache opened with [`PlanCache::open`] journals
//!   every insert, invalidation, and epoch advance to its own write-ahead
//!   log (the same checksummed, torn-tail-truncating format as the
//!   server's). Reopening replays the log, so a crash-and-restart resumes
//!   serving hits without re-running a single solve; recovered entries
//!   are counted in [`PlanCacheStats::recovered_entries`].
//!
//! Lookups and inserts cost one short mutex hold on a `HashMap` — the
//! plans themselves live behind `Arc`s and are never copied on a hit.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use perseus_store::{ByteReader, ByteWriter, Journal, Persist, StoreError};
use perseus_telemetry::Telemetry;

use crate::fingerprint::PlanFingerprint;
use crate::frontier::ParetoFrontier;
use crate::planner::PlanOutput;

/// One cached plan plus the epoch it entered the cache in.
struct CacheEntry {
    plan: Arc<PlanOutput>,
    epoch: u64,
    /// Shared frontier view, materialized at most once: every job on
    /// every shard that hits this entry deploys from the *same*
    /// allocation, so a fleet of a thousand jobs over twenty structures
    /// holds twenty frontiers, not a thousand copies.
    frontier: Option<Arc<ParetoFrontier>>,
}

/// Map + journal, guarded together so a journaled event and the map
/// mutation it describes are atomic with respect to other writers.
struct CacheInner {
    entries: HashMap<PlanFingerprint, CacheEntry>,
    /// Epoch stamped onto new inserts; starts at 1.
    epoch: u64,
    /// Write-ahead log; `None` for an in-memory cache.
    journal: Option<Journal>,
}

/// One journaled cache mutation.
enum CacheEvent {
    /// A plan entered the cache.
    Insert {
        fp: PlanFingerprint,
        epoch: u64,
        plan: PlanOutput,
    },
    /// A fingerprint was invalidated.
    Invalidate { fp: PlanFingerprint },
    /// A new epoch opened.
    AdvanceEpoch { epoch: u64 },
    /// Entries from epochs before `floor` were dropped.
    InvalidateOlderThan { floor: u64 },
}

impl Persist for CacheEvent {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            CacheEvent::Insert { fp, epoch, plan } => {
                w.put_u8(0);
                fp.encode(w);
                w.put_u64(*epoch);
                plan.encode(w);
            }
            CacheEvent::Invalidate { fp } => {
                w.put_u8(1);
                fp.encode(w);
            }
            CacheEvent::AdvanceEpoch { epoch } => {
                w.put_u8(2);
                w.put_u64(*epoch);
            }
            CacheEvent::InvalidateOlderThan { floor } => {
                w.put_u8(3);
                w.put_u64(*floor);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(CacheEvent::Insert {
                fp: PlanFingerprint::decode(r)?,
                epoch: r.get_u64()?,
                plan: PlanOutput::decode(r)?,
            }),
            1 => Ok(CacheEvent::Invalidate {
                fp: PlanFingerprint::decode(r)?,
            }),
            2 => Ok(CacheEvent::AdvanceEpoch {
                epoch: r.get_u64()?,
            }),
            3 => Ok(CacheEvent::InvalidateOlderThan {
                floor: r.get_u64()?,
            }),
            t => Err(StoreError::corrupt(format!("invalid CacheEvent tag {t}"))),
        }
    }
}

/// Counters of one [`PlanCache`], all monotone except `entries`/`epoch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing (the caller then solves).
    pub misses: u64,
    /// Plans inserted (first-wins; a lost insert race does not count).
    pub inserts: u64,
    /// Entries dropped by targeted or epoch invalidation.
    pub invalidations: u64,
    /// Entries restored by journal replay at open.
    pub recovered_entries: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Current insert epoch.
    pub epoch: u64,
}

/// The fleet-wide plan cache. `Send + Sync`; share it behind an `Arc`
/// across every shard of a fleet.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    invalidations: AtomicU64,
    recovered: AtomicU64,
    telemetry: Telemetry,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty in-memory cache (no journal), telemetry disabled.
    pub fn new() -> PlanCache {
        PlanCache::with_telemetry(Telemetry::disabled())
    }

    /// [`PlanCache::new`] emitting `perseus_plan_cache_{hits,misses,inserts}_total`
    /// through `telemetry`.
    pub fn with_telemetry(telemetry: Telemetry) -> PlanCache {
        PlanCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                epoch: 1,
                journal: None,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            telemetry,
        }
    }

    /// Opens (or creates) a durable cache journaled at `path`, telemetry
    /// disabled. Existing records are replayed: inserts restore entries,
    /// invalidations and epoch advances re-apply, and a torn tail is
    /// truncated exactly like the server's journal. A record whose frame
    /// passed CRC but whose payload fails to decode stops the replay —
    /// everything before it is kept.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the journal cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<PlanCache, StoreError> {
        PlanCache::open_with(path, Telemetry::disabled())
    }

    /// [`PlanCache::open`] with a telemetry handle.
    ///
    /// # Errors
    ///
    /// As [`PlanCache::open`].
    pub fn open_with(
        path: impl AsRef<Path>,
        telemetry: Telemetry,
    ) -> Result<PlanCache, StoreError> {
        let (journal, records) = Journal::open(path.as_ref())?;
        let cache = PlanCache::with_telemetry(telemetry);
        {
            let mut inner = cache.inner.lock().expect("plan cache lock");
            for rec in &records {
                let Ok(event) = CacheEvent::from_bytes(&rec.payload) else {
                    break;
                };
                match event {
                    CacheEvent::Insert { fp, epoch, plan } => {
                        inner.entries.entry(fp).or_insert(CacheEntry {
                            plan: Arc::new(plan),
                            epoch,
                            frontier: None,
                        });
                    }
                    CacheEvent::Invalidate { fp } => {
                        inner.entries.remove(&fp);
                    }
                    CacheEvent::AdvanceEpoch { epoch } => {
                        inner.epoch = inner.epoch.max(epoch);
                    }
                    CacheEvent::InvalidateOlderThan { floor } => {
                        inner.entries.retain(|_, e| e.epoch >= floor);
                    }
                }
            }
            // Net entries that survived replay (inserts minus
            // invalidations), not raw insert records: the number callers
            // can actually hit after recovery.
            cache
                .recovered
                .store(inner.entries.len() as u64, Ordering::Relaxed);
            inner.journal = Some(journal);
        }
        Ok(cache)
    }

    /// Looks up a plan by fingerprint. A hit returns the shared plan
    /// without copying it; a miss returns `None` and the caller solves
    /// (then typically [`PlanCache::insert`]s).
    pub fn get(&self, fp: PlanFingerprint) -> Option<Arc<PlanOutput>> {
        let inner = self.inner.lock().expect("plan cache lock");
        match inner.entries.get(&fp) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter("perseus_plan_cache_hits_total")
                        .inc();
                }
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter("perseus_plan_cache_misses_total")
                        .inc();
                }
                None
            }
        }
    }

    /// Looks up `fp` and returns the entry's **shared frontier view**: an
    /// `Arc<ParetoFrontier>` materialized at most once per entry and then
    /// handed to every subsequent hit, so N jobs deploying the same
    /// structure share one frontier allocation instead of cloning N
    /// copies. Counts hits and misses exactly like [`PlanCache::get`].
    /// Returns `None` on a miss or when the cached plan is not a
    /// frontier.
    pub fn frontier_view(&self, fp: PlanFingerprint) -> Option<Arc<ParetoFrontier>> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        match inner.entries.get_mut(&fp) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter("perseus_plan_cache_hits_total")
                        .inc();
                }
                if entry.frontier.is_none() {
                    entry.frontier = entry.plan.as_frontier().cloned().map(Arc::new);
                }
                entry.frontier.clone()
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter("perseus_plan_cache_misses_total")
                        .inc();
                }
                None
            }
        }
    }

    /// Whether `fp` is cached, without touching the hit/miss counters.
    pub fn contains(&self, fp: PlanFingerprint) -> bool {
        self.inner
            .lock()
            .expect("plan cache lock")
            .entries
            .contains_key(&fp)
    }

    /// Inserts a plan under `fp`, journaling it if the cache is durable.
    /// First insert wins: if the fingerprint is already present (a racing
    /// solver got there first), the existing entry is kept, nothing is
    /// journaled, and the stored plan is returned — determinism makes the
    /// two plans bit-identical anyway.
    pub fn insert(&self, fp: PlanFingerprint, plan: PlanOutput) -> Arc<PlanOutput> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if let Some(existing) = inner.entries.get(&fp) {
            return Arc::clone(&existing.plan);
        }
        let epoch = inner.epoch;
        let plan = Arc::new(plan);
        // Encode before the map mutation so the journal never records an
        // insert the map does not reflect.
        let bytes = inner.journal.as_ref().map(|_| {
            CacheEvent::Insert {
                fp,
                epoch,
                plan: (*plan).clone(),
            }
            .to_bytes()
        });
        if let (Some(journal), Some(bytes)) = (inner.journal.as_mut(), bytes.as_ref()) {
            // An unwritable journal degrades durability, never serving.
            let _ = journal.append(bytes);
        }
        inner.entries.insert(
            fp,
            CacheEntry {
                plan: Arc::clone(&plan),
                epoch,
                frontier: None,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("perseus_plan_cache_inserts_total")
                .inc();
        }
        plan
    }

    /// [`PlanCache::insert`] for a frontier the caller already holds
    /// behind an `Arc`: the entry's shared view *is* the caller's `Arc`,
    /// so the solving job and every later hit deploy from one
    /// allocation. First insert wins — if the fingerprint is already
    /// present, the existing entry's view is returned instead.
    pub fn insert_frontier(
        &self,
        fp: PlanFingerprint,
        frontier: Arc<ParetoFrontier>,
    ) -> Arc<ParetoFrontier> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if let Some(entry) = inner.entries.get_mut(&fp) {
            if entry.frontier.is_none() {
                entry.frontier = entry.plan.as_frontier().cloned().map(Arc::new);
            }
            return entry.frontier.clone().unwrap_or(frontier);
        }
        let epoch = inner.epoch;
        let plan = Arc::new(PlanOutput::Frontier((*frontier).clone()));
        let bytes = inner.journal.as_ref().map(|_| {
            CacheEvent::Insert {
                fp,
                epoch,
                plan: (*plan).clone(),
            }
            .to_bytes()
        });
        if let (Some(journal), Some(bytes)) = (inner.journal.as_mut(), bytes.as_ref()) {
            let _ = journal.append(bytes);
        }
        inner.entries.insert(
            fp,
            CacheEntry {
                plan,
                epoch,
                frontier: Some(Arc::clone(&frontier)),
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("perseus_plan_cache_inserts_total")
                .inc();
        }
        frontier
    }

    /// Looks up `fp`, planning and inserting on a miss. Returns the
    /// (shared) plan and whether it was a hit. The closure runs without
    /// the cache lock held, so concurrent lookups are never blocked by a
    /// slow solve.
    ///
    /// # Errors
    ///
    /// Whatever the planning closure returns.
    pub fn get_or_plan<E>(
        &self,
        fp: PlanFingerprint,
        plan: impl FnOnce() -> Result<PlanOutput, E>,
    ) -> Result<(Arc<PlanOutput>, bool), E> {
        if let Some(hit) = self.get(fp) {
            return Ok((hit, true));
        }
        let solved = plan()?;
        Ok((self.insert(fp, solved), false))
    }

    /// Drops the entry under `fp`, if any. Called by a server when a job
    /// re-characterizes: the fresh profiles hash to a new fingerprint, so
    /// the entry under the old one is stale for that structure.
    pub fn invalidate(&self, fp: PlanFingerprint) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if inner.entries.remove(&fp).is_some() {
            let bytes = inner
                .journal
                .as_ref()
                .map(|_| CacheEvent::Invalidate { fp }.to_bytes());
            if let (Some(journal), Some(bytes)) = (inner.journal.as_mut(), bytes.as_ref()) {
                let _ = journal.append(bytes);
            }
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Opens a new insert epoch and returns it. Entries already cached
    /// keep serving; the epoch only stamps *future* inserts, giving
    /// [`PlanCache::invalidate_older_than`] a cutoff to sweep against.
    pub fn advance_epoch(&self) -> u64 {
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.epoch += 1;
        let epoch = inner.epoch;
        let bytes = inner
            .journal
            .as_ref()
            .map(|_| CacheEvent::AdvanceEpoch { epoch }.to_bytes());
        if let (Some(journal), Some(bytes)) = (inner.journal.as_mut(), bytes.as_ref()) {
            let _ = journal.append(bytes);
        }
        epoch
    }

    /// Drops every entry inserted before epoch `floor`. The sweep half of
    /// epoch invalidation: advance the epoch when a fleet-wide input
    /// changes (a driver update shifts every profile), let fresh plans
    /// repopulate, then sweep the old epoch out.
    pub fn invalidate_older_than(&self, floor: u64) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        let before = inner.entries.len();
        inner.entries.retain(|_, e| e.epoch >= floor);
        let dropped = (before - inner.entries.len()) as u64;
        if dropped > 0 {
            let bytes = inner
                .journal
                .as_ref()
                .map(|_| CacheEvent::InvalidateOlderThan { floor }.to_bytes());
            if let (Some(journal), Some(bytes)) = (inner.journal.as_mut(), bytes.as_ref()) {
                let _ = journal.append(bytes);
            }
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Every cached fingerprint, sorted (deterministic for tests).
    pub fn fingerprints(&self) -> Vec<PlanFingerprint> {
        let inner = self.inner.lock().expect("plan cache lock");
        let mut fps: Vec<PlanFingerprint> = inner.entries.keys().copied().collect();
        fps.sort();
        fps
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache lock");
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            recovered_entries: self.recovered.load(Ordering::Relaxed),
            entries: inner.entries.len() as u64,
            epoch: inner.epoch,
        }
    }

    /// Hit rate over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed) as f64;
        let misses = self.misses.load(Ordering::Relaxed) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Whether this cache journals to disk.
    pub fn is_durable(&self) -> bool {
        self.inner
            .lock()
            .expect("plan cache lock")
            .journal
            .is_some()
    }
}
