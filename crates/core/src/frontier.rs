//! Algorithm 1: iteratively discovering the iteration time–energy Pareto
//! frontier, plus the straggler lookup of §3.1.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use perseus_dag::NodeId;
use perseus_gpu::FreqMHz;
use perseus_pipeline::{node_schedule_gaps, node_start_times, PipeNode, PipelineDag};
use perseus_telemetry::Telemetry;

use crate::cache::PlanCache;
use crate::context::{CoreError, PlanContext};
use crate::cut::{get_next_pareto_arena, CutOutcome, CutSolver, SolverArena};
use crate::energy::{pipeline_energy, PipelineEnergy};
use crate::fingerprint::{plan_fingerprint_with_power, PlanFingerprint};
use crate::parallel::parallel_map;

/// A realized energy schedule: planned per-computation durations lowered
/// to concrete GPU frequencies (§4.3's conversion rule: the slowest
/// frequency that runs no slower than planned).
#[derive(Debug, Clone)]
pub struct EnergySchedule {
    /// Planned duration per pipeline DAG node (0 for events).
    pub planned: Vec<f64>,
    /// Assigned SM frequency per node (`None` for events / fixed ops).
    pub freqs: Vec<Option<FreqMHz>>,
    /// Realized duration per node at the assigned frequency.
    pub realized_dur: Vec<f64>,
    /// Realized energy per node at the assigned frequency.
    pub realized_energy: Vec<f64>,
    /// Realized iteration time (makespan with realized durations).
    pub time_s: f64,
    /// Realized computation + fixed-op energy, joules (no blocking).
    pub compute_j: f64,
}

impl EnergySchedule {
    /// Realizes planned durations into frequencies and evaluates the
    /// resulting schedule.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingProfile`] never occurs if `ctx` built the same
    /// DAG; kept as `Result` for forward compatibility.
    pub fn realize(ctx: &PlanContext<'_>, planned: Vec<f64>) -> Result<EnergySchedule, CoreError> {
        EnergySchedule::realize_with_cap(ctx, planned, None)
    }

    /// Like [`EnergySchedule::realize`], but every assigned frequency is
    /// limited to `cap` when one is given (datacenter power/thermal
    /// capping, §2.3). Computations whose planned duration is
    /// unreachable under the cap run at the fastest capped frequency
    /// instead of panicking — the schedule degrades, it does not die.
    ///
    /// # Errors
    ///
    /// Same as [`EnergySchedule::realize`].
    pub fn realize_with_cap(
        ctx: &PlanContext<'_>,
        planned: Vec<f64>,
        cap: Option<FreqMHz>,
    ) -> Result<EnergySchedule, CoreError> {
        let n = ctx.pipe.dag.node_count();
        let mut freqs = vec![None; n];
        let mut realized_dur = vec![0.0f64; n];
        let mut realized_energy = vec![0.0f64; n];
        for id in ctx.pipe.dag.node_ids() {
            match ctx.pipe.dag.node(id) {
                PipeNode::Comp(_) => {
                    let info = ctx.info(id).expect("comp node has plan info");
                    let profile = ctx.profile_of(id).expect("comp node has profile");
                    let deadline = planned[id.index()].clamp(info.t_min, info.t_max);
                    let entry = match cap {
                        Some(cap) => profile
                            .best_under_cap(deadline, cap)
                            .unwrap_or_else(|| profile.slowest_entry()),
                        None => profile
                            .slowest_within(deadline)
                            .expect("clamped deadline is always satisfiable"),
                    };
                    freqs[id.index()] = Some(entry.freq);
                    realized_dur[id.index()] = entry.time_s;
                    realized_energy[id.index()] = entry.energy_j;
                }
                PipeNode::Fixed {
                    time_s, power_w, ..
                } => {
                    realized_dur[id.index()] = *time_s;
                    realized_energy[id.index()] = time_s * power_w;
                }
                _ => {}
            }
        }
        let (_, time_s) = node_start_times(&ctx.pipe.dag, |id, _| realized_dur[id.index()]);
        let compute_j = realized_energy.iter().sum();
        Ok(EnergySchedule {
            planned,
            freqs,
            realized_dur,
            realized_energy,
            time_s,
            compute_j,
        })
    }

    /// Full Eq. 3 energy report for this schedule given straggler time
    /// `t_prime` (`None` = no straggler).
    pub fn energy_report(&self, ctx: &PlanContext<'_>, t_prime: Option<f64>) -> PipelineEnergy {
        pipeline_energy(
            ctx.pipe,
            |id, _| self.realized_dur[id.index()],
            |id, _| self.realized_energy[id.index()],
            ctx.gpu.blocking_w,
            t_prime,
        )
    }

    /// [`EnergySchedule::energy_report`] with an optional sleep plan
    /// overlaid: each sleep window replaces its slice of `P_blocking`
    /// idling with the state's actual draw, shrinking `blocking_j` by the
    /// plan's total savings. With `None` (or an empty plan) the report is
    /// identical to the frequency-only one.
    pub fn energy_report_with_sleep(
        &self,
        ctx: &PlanContext<'_>,
        t_prime: Option<f64>,
        sleep: Option<&crate::sleep::SleepPlan>,
    ) -> PipelineEnergy {
        let mut report = self.energy_report(ctx, t_prime);
        if let Some(plan) = sleep {
            report.blocking_j -= plan.saved_j(ctx.gpu.blocking_w);
        }
        report
    }

    /// The frequency assigned to `node`, if it is a computation.
    pub fn freq_of(&self, node: NodeId) -> Option<FreqMHz> {
        self.freqs[node.index()]
    }
}

/// One point on the frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Planned iteration time (continuous relaxation), seconds.
    pub planned_time_s: f64,
    /// Planned computation energy `Σ e_i(t_i)` from the fitted curves,
    /// joules (blocking energy is T′-dependent and reported separately via
    /// [`EnergySchedule::energy_report`]).
    pub planned_energy_j: f64,
    /// The realized schedule (frequencies, realized time and energy).
    pub schedule: EnergySchedule,
}

/// The iteration time–energy Pareto frontier of one pipeline.
///
/// Points ascend in planned time from `T_min` (all computations at max
/// frequency — after intrinsic-bloat removal) to `T*` (the minimum-energy
/// iteration time). Slowing past `T*` would *increase* energy, so lookups
/// clamp to it (Eq. 2: `T_opt = min(T*, T')`).
#[derive(Debug, Clone)]
pub struct ParetoFrontier {
    points: Vec<FrontierPoint>,
}

impl ParetoFrontier {
    /// Builds a frontier from points already ascending in planned time.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not strictly ascending in
    /// `planned_time_s` — the invariants every lookup relies on.
    pub fn from_points(points: Vec<FrontierPoint>) -> ParetoFrontier {
        assert!(!points.is_empty(), "frontier must have at least one point");
        assert!(
            points
                .windows(2)
                .all(|w| w[0].planned_time_s < w[1].planned_time_s),
            "frontier points must ascend strictly in planned time"
        );
        ParetoFrontier { points }
    }

    /// All frontier points, ascending in planned iteration time.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of points on the frontier.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty (never true for a characterized one).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Shortest iteration time on the frontier.
    pub fn t_min(&self) -> f64 {
        self.points
            .first()
            .expect("frontier is non-empty")
            .planned_time_s
    }

    /// Minimum-energy iteration time `T*`.
    pub fn t_star(&self) -> f64 {
        self.points
            .last()
            .expect("frontier is non-empty")
            .planned_time_s
    }

    /// The fastest schedule (used when there is no straggler — removes
    /// intrinsic bloat at unchanged iteration time).
    pub fn fastest(&self) -> &FrontierPoint {
        self.points.first().expect("frontier is non-empty")
    }

    /// The minimum-energy schedule (`T*` point).
    pub fn most_efficient(&self) -> &FrontierPoint {
        self.points.last().expect("frontier is non-empty")
    }

    /// §3.1 straggler reaction: the Pareto-optimal schedule for straggler
    /// iteration time `t_prime`, i.e. the slowest schedule not exceeding
    /// `T_opt = min(T*, T')`.
    pub fn lookup(&self, t_prime: f64) -> &FrontierPoint {
        &self.points[self.lookup_index(t_prime)]
    }

    /// Index of the point [`ParetoFrontier::lookup`] returns: binary search
    /// (O(log n)) for the last point with `planned_time_s <= T_opt`.
    pub fn lookup_index(&self, t_prime: f64) -> usize {
        let t_opt = t_prime.min(self.t_star());
        // Points ascend in time; `partition_point` finds the first point
        // beyond the bound, so the one before it is the slowest schedule
        // not exceeding `T_opt` (index 0 when even the fastest exceeds it).
        self.points
            .partition_point(|p| p.planned_time_s <= t_opt + 1e-12)
            .saturating_sub(1)
    }

    /// Re-clamps the frontier to a GPU frequency cap (§2.3 datacenter
    /// power/thermal capping): every point is re-realized with its
    /// frequencies limited to `cap`, then points that collapsed onto a
    /// slower-or-costlier neighbour are dropped so the result is again a
    /// valid frontier (strictly ascending times, strictly descending
    /// energies). A cap makes points *invalid*, never the frontier —
    /// lookups keep working against the clamped curve instead of
    /// deploying frequencies the silicon will silently throttle.
    ///
    /// Clamping is monotone: re-clamping to the same or a higher cap is a
    /// no-op, since no assigned frequency exceeds the earlier cap.
    ///
    /// # Errors
    ///
    /// Propagates realization failures from the profile database.
    pub fn clamp_to_freq_cap(
        &self,
        ctx: &PlanContext<'_>,
        cap: FreqMHz,
    ) -> Result<ParetoFrontier, CoreError> {
        let mut points: Vec<FrontierPoint> = Vec::with_capacity(self.points.len());
        let mut best_energy = f64::INFINITY;
        for p in &self.points {
            let schedule =
                EnergySchedule::realize_with_cap(ctx, p.schedule.planned.clone(), Some(cap))?;
            // The capped realization can only be slower than the plan
            // asked for; keep planned time consistent with what actually
            // runs so lookups stay truthful.
            let planned_time_s = p.planned_time_s.max(schedule.time_s);
            let planned_energy_j = schedule.compute_j;
            let ascends = match points.last() {
                Some(prev) => planned_time_s > prev.planned_time_s + 1e-12,
                None => true,
            };
            if ascends && planned_energy_j < best_energy {
                best_energy = planned_energy_j;
                points.push(FrontierPoint {
                    planned_time_s,
                    planned_energy_j,
                    schedule,
                });
            }
        }
        // The first point always survives the filter, so a non-empty
        // frontier re-clamps to a non-empty frontier — worst case a cap
        // below the whole frequency range collapses it to one point.
        Ok(ParetoFrontier { points })
    }
}

/// Tuning knobs for [`characterize`].
#[derive(Debug, Clone)]
pub struct FrontierOptions {
    /// Unit time `τ` by which each step shortens the iteration (§4.2; the
    /// paper uses 1 ms). `None` derives τ from the workload: 5% of the
    /// median per-computation time range (`t_max − t_min`), clamped to
    /// `[0.2 ms, 20 ms]`. τ must sit well below per-computation slack —
    /// not the iteration span — or the sweep overshoots the slack of
    /// non-critical paths and leaves savings on the table.
    pub tau_s: Option<f64>,
    /// Hard cap on cut iterations (safety net; Appendix E shows O(N+M)
    /// iterations suffice for pipeline DAGs).
    pub max_iters: usize,
    /// Run the stretch-into-slack pass after each cut (default true).
    /// Disabling it reverts to pure fixed-step cuts — exposed for the
    /// ablation study, not for production use (coarse steps then leak
    /// overshoot energy).
    pub stretch: bool,
    /// Warm-start consecutive Phillips–Dessouky max-flow solves from the
    /// previous iteration's flow (default true). The frontier produced is
    /// bit-identical either way — the solver extracts the minimal
    /// source-side min cut, which is unique across all maximum flows —
    /// so disabling this only buys back the cold solve cost; it exists
    /// for the `solver_suite` baseline and for differential testing.
    pub warm_start: bool,
}

impl Default for FrontierOptions {
    fn default() -> Self {
        FrontierOptions {
            tau_s: None,
            max_iters: 100_000,
            stretch: true,
            warm_start: true,
        }
    }
}

/// Workload-derived default unit time: 5% of the median per-computation
/// time range.
fn default_tau(ctx: &PlanContext<'_>) -> f64 {
    let mut spans: Vec<f64> = ctx
        .plan_info
        .iter()
        .flatten()
        .map(|i| i.t_max - i.t_min)
        .filter(|s| *s > 0.0)
        .collect();
    if spans.is_empty() {
        return 1e-3;
    }
    spans.sort_by(f64::total_cmp);
    (spans[spans.len() / 2] * 0.05).clamp(0.2e-3, 20e-3)
}

/// Stretches every computation into its schedule gap without moving any
/// start time: with start times fixed at the current earliest schedule,
/// `dur(v)` may grow to `min(t_max_v, min over successors of
/// start(succ) − start(v))` (sink-adjacent nodes are bounded by the
/// makespan). Because the fitted energy decreases on `[t_min, t_max]`,
/// this is a pure improvement — it reclaims both the step overshoot of the
/// coarse τ sweep and everything a backward-crossing (lower-bound)
/// slowdown in the exact Phillips–Dessouky formulation would have
/// captured.
fn stretch_into_slack(ctx: &PlanContext<'_>, planned: &mut [f64]) {
    let dag = &ctx.pipe.dag;
    let (gaps, _) = node_schedule_gaps(dag, |id, _| planned[id.index()]);
    for id in dag.node_ids() {
        let Some(info) = ctx.info(id) else { continue };
        let gap = gaps[id.index()];
        if gap > planned[id.index()] {
            planned[id.index()] = gap.min(info.t_max).max(planned[id.index()]);
        }
    }
}

/// The reusable characterization engine for one pipeline.
///
/// Building the edge-centric DAG and its topological order (inside
/// [`CutSolver`]) costs O(N + M) per pipeline and never changes while the
/// pipeline structure is fixed — only profiles (and hence fits) do. The
/// server re-characterizes a job every time fresh profiles arrive or
/// options change; holding a `FrontierSolver` per job makes those reruns
/// reuse the graph artifacts instead of rebuilding them.
///
/// The solver is `Send + Sync` (the counters are atomic), so one instance
/// can serve characterizations scheduled from any worker thread.
#[derive(Debug)]
pub struct FrontierSolver {
    cut: CutSolver,
    node_count: usize,
    /// Characterizations run through this solver.
    runs: AtomicUsize,
    /// Warm-started min-cut solves across all characterizations.
    warm_start_hits: AtomicU64,
    /// Augmenting paths searched across all characterizations.
    augmenting_paths: AtomicU64,
    /// Estimated paths avoided by warm starts (see
    /// [`crate::cut::ArenaStats`]).
    augmenting_paths_saved: AtomicU64,
    /// Fleet plan-cache hits observed by [`FrontierSolver::characterize_cached`].
    cache_hits: AtomicU64,
    /// Fleet plan-cache misses (each one ran the full solver).
    cache_misses: AtomicU64,
    /// Plans this solver inserted into a fleet cache.
    cache_inserts: AtomicU64,
    telemetry: Telemetry,
}

/// Reuse statistics of one [`FrontierSolver`] — the named replacement for
/// the old anonymous `(runs, artifact_reuses)` tuple, extended with the
/// warm-start counters of the incremental max-flow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Characterizations run through the solver.
    pub runs: usize,
    /// Characterizations that reused the cached graph artifacts (every run
    /// after the first).
    pub artifact_reuses: usize,
    /// Phillips–Dessouky solves that reused the previous iteration's flow.
    pub warm_start_hits: u64,
    /// Augmenting paths actually searched across all solves.
    pub augmenting_paths: u64,
    /// Estimated augmenting-path searches avoided by warm starts.
    pub augmenting_paths_saved: u64,
    /// Characterizations answered from the fleet plan cache — the solver
    /// never ran (not counted in `runs`).
    pub cache_hits: u64,
    /// Cached characterizations that missed and ran the solver.
    pub cache_misses: u64,
    /// Frontiers this solver published into the fleet plan cache.
    pub cache_inserts: u64,
}

impl FrontierSolver {
    /// Builds the reusable artifacts (edge-centric DAG, topological order)
    /// for `pipe`, with telemetry disabled.
    pub fn new(pipe: &PipelineDag) -> FrontierSolver {
        FrontierSolver::with_telemetry(pipe, Telemetry::disabled())
    }

    /// [`FrontierSolver::new`] emitting through `telemetry`: every
    /// characterization records solver runs, artifact reuses,
    /// Phillips–Dessouky iterations, and cut (re-)solves, and threads the
    /// handle down into the max-flow substrate.
    pub fn with_telemetry(pipe: &PipelineDag, telemetry: Telemetry) -> FrontierSolver {
        FrontierSolver {
            cut: CutSolver::new(pipe),
            node_count: pipe.dag.node_count(),
            runs: AtomicUsize::new(0),
            warm_start_hits: AtomicU64::new(0),
            augmenting_paths: AtomicU64::new(0),
            augmenting_paths_saved: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_inserts: AtomicU64::new(0),
            telemetry,
        }
    }

    /// Total characterizations run through this solver.
    pub fn runs(&self) -> usize {
        self.runs.load(Ordering::Relaxed)
    }

    /// Characterizations that reused the cached artifacts (every run after
    /// the first).
    pub fn artifact_reuses(&self) -> usize {
        self.runs().saturating_sub(1)
    }

    /// Both reuse counters as a named struct, plus the accumulated
    /// warm-start counters.
    pub fn stats(&self) -> SolverStats {
        let runs = self.runs();
        SolverStats {
            runs,
            artifact_reuses: runs.saturating_sub(1),
            warm_start_hits: self.warm_start_hits.load(Ordering::Relaxed),
            augmenting_paths: self.augmenting_paths.load(Ordering::Relaxed),
            augmenting_paths_saved: self.augmenting_paths_saved.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_inserts: self.cache_inserts.load(Ordering::Relaxed),
        }
    }

    /// Algorithm 1 against the cached artifacts: characterizes the full
    /// Pareto frontier of `ctx`'s pipeline.
    ///
    /// `ctx` must describe the same pipeline this solver was built for
    /// (same DAG structure); its profiles/fits may differ between calls.
    ///
    /// # Errors
    ///
    /// Propagates profile/fit errors from realization; returns
    /// [`CoreError::EmptyFrontier`] only if the pipeline has no
    /// computations.
    ///
    /// # Panics
    ///
    /// Debug builds assert the context's DAG matches the solver's.
    pub fn characterize(
        &self,
        ctx: &PlanContext<'_>,
        opts: &FrontierOptions,
    ) -> Result<ParetoFrontier, CoreError> {
        debug_assert_eq!(
            ctx.pipe.dag.node_count(),
            self.node_count,
            "FrontierSolver reused across different pipelines"
        );
        let tel = &self.telemetry;
        let prior_runs = self.runs.fetch_add(1, Ordering::Relaxed);
        if tel.is_enabled() {
            tel.counter("perseus_solver_runs_total").inc();
            if prior_runs > 0 {
                tel.counter("perseus_solver_artifact_reuses_total").inc();
            }
        }
        if ctx.pipe.computation_count() == 0 {
            return Err(CoreError::EmptyFrontier);
        }
        let fastest = ctx.fastest_durations();
        let (_, t_floor) = node_start_times(&ctx.pipe.dag, |id, _| fastest[id.index()]);
        let mut planned = ctx.min_energy_durations();
        let (_, t_star) = node_start_times(&ctx.pipe.dag, |id, _| planned[id.index()]);
        // Default τ balances per-computation resolution against the number
        // of sweep iterations for very long pipelines (the stretch pass
        // makes coarse steps safe).
        let tau = opts
            .tau_s
            .unwrap_or_else(|| default_tau(ctx).max((t_star - t_floor) / 512.0))
            .max(1e-6);

        let mut raw_points: Vec<(f64, Vec<f64>)> = vec![(t_star, planned.clone())];
        let mut makespan = t_star;
        // Sweep all the way to the floor: the early-stop margin must stay
        // well below any slowdown a user could measure, even for short
        // iterations.
        let floor_margin = (tau * 0.5).min(t_floor * 5e-4);
        let mut pd_iterations = 0u64;
        // One arena for the whole sweep: the compacted problem and the
        // previous iteration's max flow persist across steps, so most
        // iterations patch capacities and re-augment instead of rebuilding.
        let mut arena = SolverArena::new();
        arena.set_warm(opts.warm_start);
        for _ in 0..opts.max_iters {
            if makespan <= t_floor + floor_margin {
                break;
            }
            pd_iterations += 1;
            match get_next_pareto_arena(ctx, &self.cut, &mut planned, tau, &mut arena, tel) {
                CutOutcome::Reduced { new_makespan, .. } => {
                    // Steps may legitimately shrink below τ when a cut edge
                    // has little headroom left; only a truly stalled step
                    // ends the sweep.
                    if new_makespan >= makespan - tau * 1e-7 {
                        break;
                    }
                    makespan = new_makespan;
                    if opts.stretch {
                        stretch_into_slack(ctx, &mut planned);
                    }
                    raw_points.push((new_makespan, planned.clone()));
                }
                CutOutcome::AtMinimumTime => break,
            }
        }
        let arena_stats = arena.stats();
        self.warm_start_hits
            .fetch_add(arena_stats.warm_start_hits, Ordering::Relaxed);
        self.augmenting_paths
            .fetch_add(arena_stats.augmenting_paths, Ordering::Relaxed);
        self.augmenting_paths_saved
            .fetch_add(arena_stats.augmenting_paths_saved, Ordering::Relaxed);

        // Ascending time; drop any non-Pareto stragglers produced by
        // clamping.
        raw_points.reverse();
        let mut points = Vec::with_capacity(raw_points.len());
        let mut best_energy = f64::INFINITY;
        for (time, durations) in raw_points {
            let mut planned_energy = 0.0;
            for id in ctx.pipe.dag.node_ids() {
                if let Some(info) = ctx.info(id) {
                    planned_energy += info.fit.energy(durations[id.index()]);
                }
            }
            if planned_energy < best_energy {
                best_energy = planned_energy;
                let schedule = EnergySchedule::realize(ctx, durations)?;
                points.push(FrontierPoint {
                    planned_time_s: time,
                    planned_energy_j: planned_energy,
                    schedule,
                });
            }
        }
        if points.is_empty() {
            return Err(CoreError::EmptyFrontier);
        }
        if tel.is_enabled() {
            tel.counter("perseus_pd_iterations_total")
                .add(pd_iterations);
            tel.counter("perseus_frontier_points_total")
                .add(points.len() as u64);
        }
        Ok(ParetoFrontier { points })
    }

    /// [`FrontierSolver::characterize`] behind the fleet-wide plan cache:
    /// fingerprints the problem (policy `"perseus"`), and on a hit returns
    /// the cache entry's **shared** frontier — no solve, no profile fits,
    /// no copy. `runs` does not advance, no Phillips–Dessouky iteration
    /// happens, and not even the [`PlanContext`] is built: the fit
    /// regression only pays off when the solver actually runs, so it is
    /// deferred to the miss path. On a miss the context is built, the
    /// full characterization runs, and its frontier is published into the
    /// cache (first insert wins) for every other job — on any shard,
    /// under any tenant — that shares the structure.
    ///
    /// Returns the shared frontier, whether it was a cache hit, and the
    /// fingerprint (so callers can invalidate the entry if the job's
    /// structure later drifts). The returned frontier is bit-identical
    /// either way: planning is deterministic in the fingerprinted inputs,
    /// which the differential tests and the `fleet_suite` gate pin. A
    /// fleet of a thousand jobs drawn from twenty structures holds twenty
    /// frontier allocations, not a thousand.
    ///
    /// # Errors
    ///
    /// As [`FrontierSolver::characterize`]; a hit cannot fail.
    /// The characterized frontier itself never depends on `power` — sleep
    /// insertion happens downstream of characterization — but the
    /// fingerprint does: a job carrying a power-state model must never
    /// share a plan identity with a frequency-only job of the same
    /// structure, because its deployments (frontier + sleep schedule)
    /// differ. `None` keys exactly as before.
    pub fn characterize_cached(
        &self,
        pipe: &PipelineDag,
        gpu: &perseus_gpu::GpuSpec,
        profiles: &perseus_profiler::ProfileDb<perseus_pipeline::OpKey>,
        opts: &FrontierOptions,
        power: Option<&perseus_gpu::PowerStateModel>,
        cache: &PlanCache,
    ) -> Result<(Arc<ParetoFrontier>, bool, PlanFingerprint), CoreError> {
        let policy = if power.is_some() { "kareus" } else { "perseus" };
        let fp = plan_fingerprint_with_power(policy, pipe, gpu, profiles, opts, power);
        if let Some(frontier) = cache.frontier_view(fp) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("perseus_solver_cache_hits_total")
                    .inc();
            }
            return Ok((frontier, true, fp));
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("perseus_solver_cache_misses_total")
                .inc();
        }
        let ctx = PlanContext::new(pipe, gpu, profiles.clone())?;
        let frontier = Arc::new(self.characterize(&ctx, opts)?);
        let frontier = cache.insert_frontier(fp, frontier);
        self.cache_inserts.fetch_add(1, Ordering::Relaxed);
        Ok((frontier, false, fp))
    }

    /// Characterizes many independent pipelines in parallel on a scoped
    /// worker pool (one OS thread per available core, capped by the job
    /// count). Each entry pairs a solver with the context and options to
    /// run it against; results come back in input order, and every result
    /// is bit-identical to the corresponding sequential
    /// [`FrontierSolver::characterize`] call — the jobs share no mutable
    /// state (each sweep owns its [`SolverArena`]).
    pub fn characterize_all(
        jobs: &[(&FrontierSolver, &PlanContext<'_>, &FrontierOptions)],
    ) -> Vec<Result<ParetoFrontier, CoreError>> {
        parallel_map(jobs, |&(solver, ctx, opts)| solver.characterize(ctx, opts))
    }
}

/// Algorithm 1: characterizes the full Pareto frontier of `ctx`'s pipeline.
///
/// One-shot convenience over [`FrontierSolver`]: builds the reusable
/// artifacts, runs one characterization, and drops them. Callers that
/// re-characterize the same pipeline (the server, sweeps over options)
/// should hold a [`FrontierSolver`] instead.
///
/// # Errors
///
/// Propagates profile/fit errors from realization; returns
/// [`CoreError::EmptyFrontier`] only if the pipeline has no computations.
pub fn characterize(
    ctx: &PlanContext<'_>,
    opts: &FrontierOptions,
) -> Result<ParetoFrontier, CoreError> {
    FrontierSolver::new(ctx.pipe).characterize(ctx, opts)
}
