use perseus_gpu::{GpuSpec, Workload};
use perseus_models::StageWorkloads;
use perseus_pipeline::{node_start_times, PipelineBuilder, PipelineDag, ScheduleKind};

use crate::context::PlanContext;
use crate::cut::{get_next_pareto, CutOutcome};
use crate::frontier::{
    characterize, EnergySchedule, FrontierOptions, FrontierSolver, ParetoFrontier,
};
use crate::ledger::{attribute_schedule, BloatLedger, EnergyKind};

/// Bitwise frontier comparison: every f64 compared via `to_bits`, every
/// frequency assignment exactly.
fn assert_frontiers_bit_identical(a: &ParetoFrontier, b: &ParetoFrontier) {
    assert_eq!(a.points().len(), b.points().len(), "point counts differ");
    for (x, y) in a.points().iter().zip(b.points()) {
        assert_eq!(x.planned_time_s.to_bits(), y.planned_time_s.to_bits());
        assert_eq!(x.planned_energy_j.to_bits(), y.planned_energy_j.to_bits());
        assert_eq!(x.schedule.freqs, y.schedule.freqs);
        assert_eq!(x.schedule.time_s.to_bits(), y.schedule.time_s.to_bits());
        assert_eq!(
            x.schedule.compute_j.to_bits(),
            y.schedule.compute_j.to_bits()
        );
        for (p, q) in x.schedule.planned.iter().zip(&y.schedule.planned) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        for (p, q) in x.schedule.realized_dur.iter().zip(&y.schedule.realized_dur) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        for (p, q) in x
            .schedule
            .realized_energy
            .iter()
            .zip(&y.schedule.realized_energy)
        {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}

#[test]
fn warm_started_characterize_is_bit_identical_to_cold() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let stages = stages_with_scales(&[1.0, 1.1, 0.95, 1.2]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let mut opts = FrontierOptions {
        tau_s: Some(2e-3),
        ..FrontierOptions::default()
    };

    let warm_solver = FrontierSolver::new(&pipe);
    let warm = warm_solver.characterize(&ctx, &opts).unwrap();
    opts.warm_start = false;
    let cold_solver = FrontierSolver::new(&pipe);
    let cold = cold_solver.characterize(&ctx, &opts).unwrap();

    assert_frontiers_bit_identical(&warm, &cold);
    let ws = warm_solver.stats();
    let cs = cold_solver.stats();
    assert!(ws.warm_start_hits > 0, "warm sweep never warm-started");
    assert_eq!(cs.warm_start_hits, 0, "cold sweep must not warm-start");
    assert!(
        ws.augmenting_paths < cs.augmenting_paths,
        "warm starting did not reduce augmenting-path searches: {} vs {}",
        ws.augmenting_paths,
        cs.augmenting_paths
    );
}

#[test]
fn parallel_characterize_all_matches_sequential() {
    let gpu = GpuSpec::a100_pcie();
    let shapes: [(usize, usize, &[f64]); 4] = [
        (2, 4, &[1.0, 1.2]),
        (3, 5, &[0.9, 1.0, 1.3]),
        (4, 6, &[1.0, 1.1, 0.95, 1.2]),
        (3, 8, &[1.2, 1.0, 0.8]),
    ];
    let pipes: Vec<PipelineDag> = shapes.iter().map(|&(n, m, _)| build_pipe(n, m)).collect();
    let stage_sets: Vec<Vec<StageWorkloads>> = shapes
        .iter()
        .map(|&(_, _, scales)| stages_with_scales(scales))
        .collect();
    let ctxs: Vec<PlanContext<'_>> = pipes
        .iter()
        .zip(&stage_sets)
        .map(|(pipe, stages)| PlanContext::from_model_profiles(pipe, &gpu, stages).unwrap())
        .collect();
    let solvers: Vec<FrontierSolver> = pipes.iter().map(FrontierSolver::new).collect();
    let opts = FrontierOptions {
        tau_s: Some(2e-3),
        ..FrontierOptions::default()
    };
    let jobs: Vec<(&FrontierSolver, &PlanContext<'_>, &FrontierOptions)> = solvers
        .iter()
        .zip(&ctxs)
        .map(|(solver, ctx)| (solver, ctx, &opts))
        .collect();
    let parallel = FrontierSolver::characterize_all(&jobs);
    assert_eq!(parallel.len(), jobs.len());
    for ((_, ctx, opts), result) in jobs.iter().zip(&parallel) {
        // Fresh solver per sequential run so reuse counters stay honest.
        let sequential = FrontierSolver::new(ctx.pipe)
            .characterize(ctx, opts)
            .unwrap();
        assert_frontiers_bit_identical(result.as_ref().unwrap(), &sequential);
    }
}

/// Stage workloads with a configurable per-stage scale, mimicking stage
/// imbalance. `scales[s]` multiplies stage `s`'s work.
fn stages_with_scales(scales: &[f64]) -> Vec<StageWorkloads> {
    scales
        .iter()
        .map(|&k| StageWorkloads {
            fwd: Workload::new(40.0 * k, 0.004 * k, 0.85),
            bwd: Workload::new(80.0 * k, 0.008 * k, 0.92),
        })
        .collect()
}

fn build_pipe(n: usize, m: usize) -> PipelineDag {
    PipelineBuilder::new(ScheduleKind::OneFOneB, n, m)
        .build()
        .unwrap()
}

fn frontier_for(
    gpu: &GpuSpec,
    pipe: &PipelineDag,
    scales: &[f64],
    tau: Option<f64>,
) -> ParetoFrontier {
    let stages = stages_with_scales(scales);
    let ctx = PlanContext::from_model_profiles(pipe, gpu, &stages).unwrap();
    characterize(
        &ctx,
        &FrontierOptions {
            tau_s: tau,
            max_iters: 100_000,
            stretch: true,
            warm_start: true,
        },
    )
    .unwrap()
}

#[test]
fn frontier_is_monotone_tradeoff() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let frontier = frontier_for(&gpu, &pipe, &[1.0, 1.1, 0.95, 1.2], None);
    assert!(
        frontier.points().len() > 10,
        "frontier too sparse: {}",
        frontier.points().len()
    );
    for pair in frontier.points().windows(2) {
        assert!(pair[0].planned_time_s < pair[1].planned_time_s);
        assert!(pair[0].planned_energy_j > pair[1].planned_energy_j);
    }
    assert!(frontier.t_min() < frontier.t_star());
}

#[test]
fn fastest_point_matches_max_frequency_iteration_time() {
    // Intrinsic bloat removal must not slow the pipeline: the leftmost
    // frontier point runs at (essentially) the all-max-frequency time.
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let stages = stages_with_scales(&[1.0, 1.1, 0.95, 1.2]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    let fastest = ctx.fastest_durations();
    let (_, t_floor) = node_start_times(&pipe.dag, |id, _| fastest[id.index()]);
    let slowdown = frontier.t_min() / t_floor - 1.0;
    assert!(
        slowdown < 0.02,
        "fastest frontier point {:.2}% slower than floor",
        slowdown * 100.0
    );
}

#[test]
fn fastest_point_saves_energy_versus_all_max() {
    // The whole point of intrinsic bloat removal: same time, less energy.
    let gpu = GpuSpec::a40();
    let pipe = build_pipe(4, 8);
    let stages = stages_with_scales(&[1.0, 1.15, 0.9, 1.25]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();

    let all_max = EnergySchedule::realize(&ctx, ctx.fastest_durations()).unwrap();
    let base = all_max.energy_report(&ctx, None);
    let perseus = frontier.fastest().schedule.energy_report(&ctx, None);
    let savings = 1.0 - perseus.total_j() / base.total_j();
    let slowdown = perseus.iter_time_s / base.iter_time_s - 1.0;
    assert!(
        savings > 0.02,
        "expected intrinsic savings, got {:.2}%",
        savings * 100.0
    );
    assert!(slowdown < 0.02, "slowdown {:.2}%", slowdown * 100.0);
}

#[test]
fn balanced_pipeline_still_has_warmup_flush_slack() {
    // Even with perfectly balanced stages, the 1F1B warmup/flush phases
    // leave non-critical computations (§6.3 discussion of Table 6).
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 8);
    let stages = stages_with_scales(&[1.0, 1.0, 1.0, 1.0]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    let all_max = EnergySchedule::realize(&ctx, ctx.fastest_durations()).unwrap();
    let base = all_max.energy_report(&ctx, None);
    let perseus = frontier.fastest().schedule.energy_report(&ctx, None);
    let savings = 1.0 - perseus.total_j() / base.total_j();
    assert!(
        savings > 0.005,
        "warmup/flush slack should yield savings: {savings}"
    );
}

#[test]
fn lookup_clamps_to_t_star_and_t_min() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(2, 4);
    let frontier = frontier_for(&gpu, &pipe, &[1.0, 1.2], None);
    // Faster than feasible -> fastest point.
    let p = frontier.lookup(frontier.t_min() * 0.5);
    assert_eq!(p.planned_time_s, frontier.t_min());
    // Slower than T* -> clamp to T* (going past T* wastes energy).
    let p = frontier.lookup(frontier.t_star() * 10.0);
    assert_eq!(p.planned_time_s, frontier.t_star());
    // In between: the slowest point not exceeding T'.
    let mid = 0.5 * (frontier.t_min() + frontier.t_star());
    let p = frontier.lookup(mid);
    assert!(p.planned_time_s <= mid + 1e-12);
    let next_idx = frontier
        .points()
        .iter()
        .position(|q| q.planned_time_s > p.planned_time_s)
        .unwrap();
    assert!(frontier.points()[next_idx].planned_time_s > mid);
}

#[test]
fn straggler_reduces_energy_up_to_t_star() {
    // Eq. 2 behavior: energy at lookup(T') decreases as T' grows toward
    // T*, then plateaus (compute part) while blocking keeps growing.
    let gpu = GpuSpec::a40();
    let pipe = build_pipe(4, 6);
    let stages = stages_with_scales(&[1.0, 1.1, 1.0, 1.15]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();

    let t = frontier.t_min();
    let mut prev_compute = f64::INFINITY;
    for factor in [1.0, 1.1, 1.2, 1.3] {
        let t_prime = t * factor;
        let point = frontier.lookup(t_prime);
        let report = point.schedule.energy_report(&ctx, Some(t_prime));
        assert!(
            report.compute_j <= prev_compute + 1e-9,
            "compute energy should not increase with more slack"
        );
        prev_compute = report.compute_j;
        // The chosen schedule never exceeds the straggler's time.
        assert!(point.schedule.time_s <= t_prime + 1e-9);
    }
}

#[test]
fn get_next_pareto_reduces_makespan_by_tau() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let stages = stages_with_scales(&[1.0, 1.2, 0.9]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let mut planned = ctx.min_energy_durations();
    let (_, t0) = node_start_times(&pipe.dag, |id, _| planned[id.index()]);
    let tau = 1e-3;
    match get_next_pareto(&ctx, &mut planned, tau) {
        CutOutcome::Reduced {
            new_makespan,
            sped_up,
            ..
        } => {
            assert!(!sped_up.is_empty());
            let drop = t0 - new_makespan;
            assert!(
                drop > tau * 0.5 && drop < tau * 1.5,
                "expected ~tau reduction, got {drop} (tau {tau})"
            );
        }
        CutOutcome::AtMinimumTime => panic!("min-energy schedule must be reducible"),
    }
}

#[test]
fn get_next_pareto_stops_at_minimum_time() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(2, 3);
    let stages = stages_with_scales(&[1.0, 1.0]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let mut planned = ctx.fastest_durations();
    assert_eq!(
        get_next_pareto(&ctx, &mut planned, 1e-3),
        CutOutcome::AtMinimumTime
    );
}

#[test]
fn planned_durations_stay_within_bounds() {
    let gpu = GpuSpec::a40();
    let pipe = build_pipe(4, 5);
    let stages = stages_with_scales(&[1.0, 1.3, 0.8, 1.1]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    for p in frontier.points() {
        for id in pipe.dag.node_ids() {
            if let Some(info) = ctx.info(id) {
                let t = p.schedule.planned[id.index()];
                assert!(
                    t >= info.t_min - 1e-9,
                    "planned {t} below t_min {}",
                    info.t_min
                );
                assert!(
                    t <= info.t_max + 1e-9,
                    "planned {t} above t_max {}",
                    info.t_max
                );
            }
        }
    }
}

#[test]
fn realized_schedule_is_feasible() {
    // §4.3: realized durations never exceed planned ones, and assigned
    // frequencies are supported clock steps.
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 6);
    let stages = stages_with_scales(&[1.0, 1.2, 1.05]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    for p in [
        frontier.fastest(),
        frontier.lookup(frontier.t_star() * 0.7),
        frontier.most_efficient(),
    ] {
        for id in pipe.dag.node_ids() {
            if let Some(f) = p.schedule.freq_of(id) {
                assert!(gpu.supports(f), "unsupported frequency {f:?}");
                let planned = p.schedule.planned[id.index()].max(ctx.info(id).unwrap().t_min);
                assert!(p.schedule.realized_dur[id.index()] <= planned + 1e-9);
            }
        }
        assert!(p.schedule.time_s <= p.planned_time_s + 1e-9);
    }
}

#[test]
fn energy_report_accounts_blocking_and_straggler_wait() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(2, 3);
    let stages = stages_with_scales(&[1.0, 1.0]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let sched = EnergySchedule::realize(&ctx, ctx.fastest_durations()).unwrap();
    let free = sched.energy_report(&ctx, None);
    let waiting = sched.energy_report(&ctx, Some(free.iter_time_s * 1.5));
    assert_eq!(free.compute_j, waiting.compute_j);
    // Waiting on the straggler adds N * (T' - T) * P_blocking.
    let extra = waiting.blocking_j - free.blocking_j;
    let expected = 2.0 * (free.iter_time_s * 0.5) * gpu.blocking_w;
    assert!(
        (extra - expected).abs() / expected < 1e-9,
        "extra {extra} expected {expected}"
    );
    assert!(waiting.total_j() > free.total_j());
    assert!(waiting.avg_power_w() < free.avg_power_w());
}

#[test]
fn fixed_ops_are_never_modified() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 4)
        .with_data_loading(0.02, 45.0)
        .build()
        .unwrap();
    let stages = stages_with_scales(&[1.0, 1.1]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    for p in frontier.points() {
        for (id, _, time_s, power_w) in pipe.fixed_ops() {
            assert_eq!(p.schedule.planned[id.index()], time_s);
            assert_eq!(p.schedule.freq_of(id), None);
            assert!((p.schedule.realized_energy[id.index()] - time_s * power_w).abs() < 1e-12);
        }
    }
}

#[test]
fn missing_profile_is_reported() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(2, 2);
    let profiles = perseus_profiler::ProfileDb::new();
    match PlanContext::new(&pipe, &gpu, profiles) {
        Err(crate::CoreError::MissingProfile { stage: _, kind: _ }) => {}
        other => panic!("expected MissingProfile, got {other:?}"),
    }
}

#[test]
fn explicit_tau_controls_granularity() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(2, 3);
    let coarse = frontier_for(&gpu, &pipe, &[1.0, 1.2], Some(20e-3));
    let fine = frontier_for(&gpu, &pipe, &[1.0, 1.2], Some(2e-3));
    assert!(fine.points().len() > coarse.points().len());
}

#[test]
fn more_imbalance_means_more_intrinsic_savings() {
    // §6.2: stage imbalance is what creates intrinsic bloat.
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let savings_for = |scales: &[f64]| {
        let stages = stages_with_scales(scales);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
        let base = EnergySchedule::realize(&ctx, ctx.fastest_durations())
            .unwrap()
            .energy_report(&ctx, None);
        let perseus = frontier.fastest().schedule.energy_report(&ctx, None);
        1.0 - perseus.total_j() / base.total_j()
    };
    let balanced = savings_for(&[1.0, 1.0, 1.0, 1.0]);
    let imbalanced = savings_for(&[1.0, 1.0, 1.0, 1.4]);
    assert!(
        imbalanced > balanced,
        "imbalanced {imbalanced} should beat balanced {balanced}"
    );
}

#[test]
fn attribution_splits_all_max_into_useful_and_intrinsic() {
    // An imbalanced pipeline at max frequency has intrinsic bloat (the
    // slack-filling alternative is strictly cheaper) and, without a
    // straggler, no extrinsic bloat.
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let stages = stages_with_scales(&[1.0, 1.2, 0.9, 1.3]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let sched = EnergySchedule::realize(&ctx, ctx.fastest_durations()).unwrap();
    let attr = attribute_schedule(&ctx, &sched, None);
    let report = sched.energy_report(&ctx, None);
    assert!(
        (attr.total.total_j() - report.total_j()).abs() / report.total_j() < 1e-12,
        "attribution total {} vs Eq.3 total {}",
        attr.total.total_j(),
        report.total_j()
    );
    assert!(attr.total.useful_j > 0.0);
    assert!(
        attr.total.intrinsic_j > 0.0,
        "imbalance at max frequency must show intrinsic bloat"
    );
    assert_eq!(attr.total.extrinsic_j, 0.0);
    assert_eq!(attr.iter_time_s, report.iter_time_s);
    assert_eq!(attr.sync_time_s, report.iter_time_s);
}

#[test]
fn attribution_charges_the_straggler_wait_as_extrinsic() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let stages = stages_with_scales(&[1.0, 1.1, 0.95, 1.2]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let sched = EnergySchedule::realize(&ctx, ctx.fastest_durations()).unwrap();
    let t_prime = sched.time_s * 1.4;
    let attr = attribute_schedule(&ctx, &sched, Some(t_prime));
    let expected_wait = 4.0 * gpu.blocking_w * (t_prime - sched.time_s);
    assert!(
        (attr.total.extrinsic_j - expected_wait).abs() / expected_wait < 1e-12,
        "extrinsic {} vs N*P_b*(T'-T) {}",
        attr.total.extrinsic_j,
        expected_wait
    );
    // The wait is charged to SyncWait and split evenly over stages.
    assert_eq!(
        attr.kind(EnergyKind::SyncWait).extrinsic_j,
        attr.total.extrinsic_j
    );
    for stage in &attr.per_stage {
        assert!((stage.extrinsic_j - expected_wait / 4.0).abs() / expected_wait < 1e-12);
    }
    // A straggler finishing before the pipeline adds nothing.
    let early = attribute_schedule(&ctx, &sched, Some(sched.time_s * 0.5));
    assert_eq!(early.total.extrinsic_j, 0.0);
    assert_eq!(early.sync_time_s, sched.time_s);
}

#[test]
fn attribution_of_min_energy_schedule_has_no_instruction_bloat() {
    // At the frontier's most efficient point every computation already
    // runs at its min-energy duration — the slack-filling alternative IS
    // the realized instruction, so intrinsic bloat vanishes.
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let stages = stages_with_scales(&[1.0, 1.15, 0.9, 1.25]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    let sched = &frontier.most_efficient().schedule;
    let attr = attribute_schedule(&ctx, sched, None);
    assert!(
        attr.total.intrinsic_j <= attr.total.total_j() * 1e-9,
        "min-energy schedule shows intrinsic bloat: {} J",
        attr.total.intrinsic_j
    );
}

#[test]
fn ledger_aggregates_weighted_attributions() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(2, 4);
    let stages = stages_with_scales(&[1.0, 1.2]);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let sched = EnergySchedule::realize(&ctx, ctx.fastest_durations()).unwrap();
    let attr = attribute_schedule(&ctx, &sched, Some(sched.time_s * 1.2));

    let mut ledger = BloatLedger::new(2);
    ledger.record(&attr, 3.0);
    ledger.record(&attr, 1.0);
    ledger.note_iteration();
    assert_eq!(ledger.iterations(), 1);
    let total = ledger.total();
    assert!((total.total_j() - 4.0 * attr.total.total_j()).abs() < 1e-9);
    let stage_sum: f64 = ledger.per_stage().iter().map(|b| b.total_j()).sum();
    let kind_sum: f64 = EnergyKind::ALL
        .iter()
        .map(|k| ledger.kind(*k).total_j())
        .sum();
    assert!((stage_sum - total.total_j()).abs() < 1e-9);
    assert!((kind_sum - total.total_j()).abs() < 1e-9);

    let mut other = BloatLedger::new(2);
    other.record(&attr, 2.0);
    other.note_iteration();
    ledger.merge(&other);
    assert_eq!(ledger.iterations(), 2);
    assert!((ledger.total().total_j() - 6.0 * attr.total.total_j()).abs() < 1e-9);
    assert!((ledger.mean_per_iteration().total_j() - 3.0 * attr.total.total_j()).abs() < 1e-9);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn frontier_invariants_hold_for_random_pipelines(
            n in 2usize..5,
            m in 2usize..7,
            scales in proptest::collection::vec(0.7f64..1.4, 2..5),
        ) {
            prop_assume!(scales.len() >= n);
            let gpu = GpuSpec::a100_pcie();
            let pipe = build_pipe(n, m);
            let stages = stages_with_scales(&scales[..n]);
            let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
            let frontier =
                characterize(&ctx, &FrontierOptions { tau_s: Some(5e-3), max_iters: 50_000, ..FrontierOptions::default() })
                    .unwrap();
            // Monotone tradeoff.
            for pair in frontier.points().windows(2) {
                prop_assert!(pair[0].planned_time_s < pair[1].planned_time_s);
                prop_assert!(pair[0].planned_energy_j >= pair[1].planned_energy_j);
            }
            // Realized schedules never slower than planned.
            for p in frontier.points() {
                prop_assert!(p.schedule.time_s <= p.planned_time_s + 1e-9);
            }
        }

        // Telemetry is observation only: characterizing with an enabled
        // registry yields the bit-identical frontier a disabled handle
        // does, for any random pipeline shape.
        #[test]
        fn telemetry_never_changes_the_characterized_frontier(
            n in 2usize..5,
            m in 2usize..7,
            scales in proptest::collection::vec(0.7f64..1.4, 2..5),
        ) {
            prop_assume!(scales.len() >= n);
            let gpu = GpuSpec::a100_pcie();
            let pipe = build_pipe(n, m);
            let stages = stages_with_scales(&scales[..n]);
            let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
            let opts = FrontierOptions { tau_s: Some(5e-3), max_iters: 50_000, ..FrontierOptions::default() };
            let tel = perseus_telemetry::Telemetry::enabled();
            let traced = crate::frontier::FrontierSolver::with_telemetry(&pipe, tel.clone())
                .characterize(&ctx, &opts)
                .unwrap();
            let silent = crate::frontier::FrontierSolver::new(&pipe)
                .characterize(&ctx, &opts)
                .unwrap();
            prop_assert_eq!(traced.points().len(), silent.points().len());
            for (a, b) in traced.points().iter().zip(silent.points()) {
                prop_assert_eq!(a.planned_time_s.to_bits(), b.planned_time_s.to_bits());
                prop_assert_eq!(a.planned_energy_j.to_bits(), b.planned_energy_j.to_bits());
                prop_assert_eq!(&a.schedule.freqs, &b.schedule.freqs);
                prop_assert_eq!(a.schedule.time_s.to_bits(), b.schedule.time_s.to_bits());
                prop_assert_eq!(a.schedule.compute_j.to_bits(), b.schedule.compute_j.to_bits());
            }
            // And the traced run did count its PD iterations.
            let snap = tel.snapshot();
            prop_assert!(snap.value_of("perseus_pd_iterations_total", &[]).unwrap_or(0.0) >= 1.0);
            prop_assert_eq!(
                snap.value_of("perseus_solver_runs_total", &[]),
                Some(1.0)
            );
        }

        #[test]
        fn lookup_selects_slowest_point_within_the_deadline(
            t_min in 0.2f64..5.0,
            gaps in proptest::collection::vec(1e-3f64..0.5, 1..60),
            // T' as a factor of the frontier span, deliberately ranging
            // below T_min and beyond T*.
            factor in -0.5f64..2.0,
        ) {
            let frontier = synthetic_frontier(t_min, &gaps);
            let t_star = frontier.t_star();
            let t_prime = t_min + (t_star - t_min) * factor;
            let chosen = frontier.lookup(t_prime);
            let eps = 1e-12;
            // Perseus straggler rule (§3.2): run no slower than
            // min(T*, T'), at the lowest energy available. A deadline
            // below T_min is infeasible; the fastest point is the best
            // the frontier can do.
            let t_opt = t_prime.min(t_star).max(t_min);
            prop_assert!(chosen.planned_time_s <= t_opt + eps);
            // ... and `chosen` is the SLOWEST such point: every point
            // strictly slower than it overshoots the deadline.
            for p in frontier.points() {
                if p.planned_time_s > chosen.planned_time_s {
                    prop_assert!(p.planned_time_s > t_opt + eps);
                }
            }
        }

        // Explicit lower-edge clamp: a deadline strictly below the fastest
        // point (including absurd negatives a skewed clock could produce)
        // is infeasible — lookup answers the fastest point, never panics.
        #[test]
        fn lookup_clamps_deadlines_below_the_fastest_point(
            t_min in 0.2f64..5.0,
            gaps in proptest::collection::vec(1e-3f64..0.5, 1..40),
            below in 1e-6f64..10.0,
        ) {
            let frontier = synthetic_frontier(t_min, &gaps);
            let chosen = frontier.lookup(t_min - below);
            prop_assert_eq!(chosen.planned_time_s, frontier.t_min());
            prop_assert_eq!(
                frontier.lookup(-below).planned_time_s,
                frontier.t_min()
            );
        }

        // The ledger's contract (satellite: conservation invariant):
        // useful + intrinsic + extrinsic equals Eq. 3's total to within
        // 1e-9 relative, for random pipeline shapes, random frequency
        // plans, frequency caps, and clock-skewed straggler times
        // (negative and sub-makespan T' included). The per-stage and
        // per-kind aggregations must sum back to the same total.
        #[test]
        fn ledger_conserves_energy_for_random_schedules(
            n in 2usize..5,
            m in 2usize..7,
            scales in proptest::collection::vec(0.7f64..1.4, 4..5),
            fracs in proptest::collection::vec(0.0f64..1.0, 16..17),
            t_factor in -0.5f64..2.5,
            cap_frac in 0.0f64..1.0,
        ) {
            let gpu = GpuSpec::a100_pcie();
            let mut builder = PipelineBuilder::new(ScheduleKind::OneFOneB, n, m);
            if m % 2 == 0 {
                // Exercise fixed-time operations too.
                builder = builder.with_data_loading(0.005, 45.0);
            }
            let pipe = builder.build().unwrap();
            let stages = stages_with_scales(&scales[..n]);
            let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();

            // A random frequency plan: each computation somewhere on
            // [t_min, t_max], realized under an optional frequency cap
            // (the §2.3 thermal-throttle fault).
            let mut planned = ctx.fastest_durations();
            for (i, id) in pipe.dag.node_ids().enumerate() {
                if let Some(info) = ctx.info(id) {
                    let frac = fracs[i % fracs.len()];
                    planned[id.index()] = info.t_min + frac * (info.t_max - info.t_min);
                }
            }
            let cap = if cap_frac < 0.5 {
                None
            } else {
                let freqs = gpu.frequencies();
                let idx = ((cap_frac - 0.5) * 2.0 * (freqs.len() - 1) as f64) as usize;
                Some(freqs[idx.min(freqs.len() - 1)])
            };
            let sched = EnergySchedule::realize_with_cap(&ctx, planned, cap).unwrap();

            // T' < 0 models a skewed clock; T' < T models a straggler
            // that is not actually the slowest; both must be inert.
            let t_prime = if t_factor < -0.25 {
                None
            } else {
                Some(sched.time_s * t_factor)
            };
            let attr = attribute_schedule(&ctx, &sched, t_prime);
            let report = sched.energy_report(&ctx, t_prime);
            let total = report.total_j();
            prop_assert!(
                (attr.total.total_j() - total).abs() <= 1e-9 * total.max(1.0),
                "conservation violated: attributed {} vs Eq.3 {}",
                attr.total.total_j(),
                total
            );
            let stage_sum: f64 = attr.per_stage.iter().map(|b| b.total_j()).sum();
            let kind_sum: f64 = attr.per_kind.iter().map(|b| b.total_j()).sum();
            prop_assert!((stage_sum - total).abs() <= 1e-9 * total.max(1.0));
            prop_assert!((kind_sum - total).abs() <= 1e-9 * total.max(1.0));
            // Every component is a non-negative quantity of joules.
            for b in attr.per_stage.iter().chain(attr.per_kind.iter()) {
                prop_assert!(b.useful_j >= 0.0);
                prop_assert!(b.intrinsic_j >= 0.0);
                prop_assert!(b.extrinsic_j >= 0.0);
            }
        }

        // Explicit upper-edge clamp: a deadline beyond the slowest point
        // (a catastrophic straggler, `T' = ∞` included) saturates at `T*`
        // — running slower than the min-energy point never saves energy.
        #[test]
        fn lookup_clamps_deadlines_above_the_slowest_point(
            t_min in 0.2f64..5.0,
            gaps in proptest::collection::vec(1e-3f64..0.5, 1..40),
            above in 1e-6f64..100.0,
        ) {
            let frontier = synthetic_frontier(t_min, &gaps);
            let t_star = frontier.t_star();
            let chosen = frontier.lookup(t_star + above);
            prop_assert_eq!(chosen.planned_time_s, t_star);
            prop_assert_eq!(
                frontier.lookup(f64::INFINITY).planned_time_s,
                t_star
            );
        }
    }

    /// Strictly ascending synthetic frontier from a base time and positive
    /// gaps; energies descend, schedules are empty shells (lookup reads
    /// neither).
    fn synthetic_frontier(t_min: f64, gaps: &[f64]) -> ParetoFrontier {
        let mut t = t_min;
        let mut points = Vec::with_capacity(gaps.len() + 1);
        for (i, g) in std::iter::once(&0.0).chain(gaps).enumerate() {
            t += g;
            points.push(crate::frontier::FrontierPoint {
                planned_time_s: t,
                planned_energy_j: (gaps.len() + 1 - i) as f64,
                schedule: EnergySchedule {
                    planned: Vec::new(),
                    freqs: Vec::new(),
                    realized_dur: Vec::new(),
                    realized_energy: Vec::new(),
                    time_s: t,
                    compute_j: (gaps.len() + 1 - i) as f64,
                },
            });
        }
        ParetoFrontier::from_points(points)
    }
}

/// Exhaustive cross-validation: on a tiny pipeline with a coarse frequency
/// set, enumerate EVERY frequency assignment, build the true Pareto front
/// of realized (time, total energy), and check that Perseus's frontier
/// tracks it closely. This validates the whole chain — continuous
/// relaxation, graph-cut sweep, stretch pass, frequency quantization —
/// against ground truth.
#[test]
fn frontier_matches_brute_force_on_tiny_instance() {
    use perseus_pipeline::PipeNode;

    let gpu = GpuSpec {
        name: "tiny-test-gpu",
        min_freq_mhz: 600,
        max_freq_mhz: 1000,
        step_mhz: 100,
        tdp_w: 300.0,
        static_w: 80.0,
        blocking_w: 70.0,
        alpha: 2.2,
        flops_per_mhz_s: 1.0e11,
        cap_knee: 1.0, // pure linear DVFS keeps the ground truth clean
    };
    let pipe = build_pipe(2, 2);
    let stages = vec![
        StageWorkloads {
            fwd: Workload::new(50.0, 0.004, 0.85),
            bwd: Workload::new(100.0, 0.008, 0.92),
        },
        StageWorkloads {
            fwd: Workload::new(65.0, 0.005, 0.85),
            bwd: Workload::new(130.0, 0.010, 0.92),
        },
    ];
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();

    // Enumerate all 5^8 assignments over the computation nodes.
    let comps: Vec<_> = pipe.computations().map(|(id, _)| id).collect();
    assert_eq!(comps.len(), 8);
    let freqs = gpu.frequencies();
    let n_f = freqs.len();
    let mut brute: Vec<(f64, f64)> = Vec::with_capacity(n_f.pow(8));
    let mut assignment = vec![0usize; comps.len()];
    loop {
        // Evaluate this assignment.
        let mut dur = vec![0.0f64; pipe.dag.node_count()];
        let mut energy = vec![0.0f64; pipe.dag.node_count()];
        for (slot, &id) in comps.iter().enumerate() {
            let profile = ctx.profile_of(id).unwrap();
            let e = profile.entry_at(freqs[assignment[slot]]).unwrap();
            dur[id.index()] = e.time_s;
            energy[id.index()] = e.energy_j;
        }
        let report = crate::pipeline_energy(
            &pipe,
            |id, _: &PipeNode| dur[id.index()],
            |id, _: &PipeNode| energy[id.index()],
            gpu.blocking_w,
            None,
        );
        brute.push((report.iter_time_s, report.total_j()));
        // Next assignment (odometer).
        let mut k = 0;
        loop {
            assignment[k] += 1;
            if assignment[k] < n_f {
                break;
            }
            assignment[k] = 0;
            k += 1;
            if k == comps.len() {
                break;
            }
        }
        if k == comps.len() {
            break;
        }
    }
    // True Pareto front (ascending time, strictly descending energy).
    brute.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut front: Vec<(f64, f64)> = Vec::new();
    let mut best = f64::INFINITY;
    for (t, e) in brute {
        if e < best {
            best = e;
            front.push((t, e));
        }
    }

    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    // For every ground-truth Pareto point, Perseus must offer a schedule
    // that is no slower and at most a few percent hungrier (continuous
    // relaxation + τ quantization account for the gap).
    for &(t_b, e_b) in &front {
        let candidate = frontier
            .points()
            .iter()
            .filter(|p| p.schedule.time_s <= t_b + 1e-9)
            .map(|p| p.schedule.energy_report(&ctx, None).total_j())
            .fold(f64::INFINITY, f64::min);
        assert!(
            candidate <= e_b * 1.05,
            "at T={t_b:.4}: perseus best {candidate:.2} J vs brute optimum {e_b:.2} J"
        );
    }
    // And the fastest point must hit the true minimum time exactly.
    let t_floor = front.first().unwrap().0;
    assert!((frontier.fastest().schedule.time_s - t_floor).abs() < 1e-9);
}

mod fingerprint_and_cache {
    use std::sync::Arc;

    use super::*;
    use crate::cache::PlanCache;
    use crate::fingerprint::{plan_fingerprint, PlanFingerprint};
    use crate::planner::{Perseus, PlanOutput, Planner};
    use perseus_pipeline::{CompKind, OpKey};
    use perseus_profiler::{OpProfile, ProfileDb};
    use perseus_store::Persist;

    /// All (key, profile) pairs for `scales`, in natural stage/kind order.
    fn profile_pairs(gpu: &GpuSpec, scales: &[f64]) -> Vec<(OpKey, OpProfile)> {
        let mut pairs = Vec::new();
        for (s, sw) in stages_with_scales(scales).iter().enumerate() {
            for (kind, w) in [
                (CompKind::Forward, &sw.fwd),
                (CompKind::Backward, &sw.bwd),
                (CompKind::Recompute, &sw.fwd),
            ] {
                pairs.push((
                    OpKey {
                        stage: s,
                        chunk: 0,
                        kind,
                    },
                    OpProfile::from_model(gpu, w),
                ));
            }
        }
        pairs
    }

    fn db_in_order(pairs: &[(OpKey, OpProfile)], order: &[usize]) -> ProfileDb<OpKey> {
        let mut db = ProfileDb::new();
        for &i in order {
            let (k, p) = &pairs[i];
            db.insert(k.clone(), p.clone());
        }
        db
    }

    /// Tiny deterministic shuffle so proptest cases stay reproducible.
    fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        order
    }

    fn default_opts() -> FrontierOptions {
        FrontierOptions {
            tau_s: Some(5e-3),
            max_iters: 50_000,
            stretch: true,
            warm_start: true,
        }
    }

    #[test]
    fn fingerprint_ignores_job_identity_and_insertion_order() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(3, 5);
        let scales = [1.0, 1.1, 0.9];
        let pairs = profile_pairs(&gpu, &scales);
        let natural = db_in_order(&pairs, &(0..pairs.len()).collect::<Vec<_>>());
        let opts = default_opts();
        let fp = plan_fingerprint("perseus", &pipe, &gpu, &natural, &opts);
        // The fingerprint API takes no job name and no tenant: two jobs
        // with identical structure *cannot* fingerprint differently. Any
        // insertion order of the same profiles agrees too.
        for seed in [1u64, 7, 42, 1234] {
            let shuffled_db = db_in_order(&pairs, &shuffled(pairs.len(), seed));
            assert_eq!(
                fp,
                plan_fingerprint("perseus", &pipe, &gpu, &shuffled_db, &opts),
                "insertion order (seed {seed}) changed the fingerprint"
            );
        }
    }

    #[test]
    fn fingerprint_separates_every_structural_axis() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(3, 5);
        let scales = [1.0, 1.1, 0.9];
        let pairs = profile_pairs(&gpu, &scales);
        let order: Vec<usize> = (0..pairs.len()).collect();
        let db = db_in_order(&pairs, &order);
        let opts = default_opts();

        let mut fps = vec![plan_fingerprint("perseus", &pipe, &gpu, &db, &opts)];
        // Different policy name.
        fps.push(plan_fingerprint("zeus_global", &pipe, &gpu, &db, &opts));
        // Different DAG shape: one more stage, one more microbatch, and a
        // different schedule kind (different edge set at equal node
        // counts per stage program).
        let wider = build_pipe(4, 5);
        let deeper = build_pipe(3, 6);
        let gpipe = PipelineBuilder::new(ScheduleKind::GPipe, 3, 5)
            .build()
            .unwrap();
        fps.push(plan_fingerprint("perseus", &wider, &gpu, &db, &opts));
        fps.push(plan_fingerprint("perseus", &deeper, &gpu, &db, &opts));
        fps.push(plan_fingerprint("perseus", &gpipe, &gpu, &db, &opts));
        // Different GPU model.
        fps.push(plan_fingerprint(
            "perseus",
            &pipe,
            &GpuSpec::v100(),
            &db,
            &opts,
        ));
        fps.push(plan_fingerprint(
            "perseus",
            &pipe,
            &GpuSpec::h100_sxm(),
            &db,
            &opts,
        ));
        // Different frontier options.
        let coarse = FrontierOptions {
            tau_s: Some(1e-2),
            ..default_opts()
        };
        let no_stretch = FrontierOptions {
            stretch: false,
            ..default_opts()
        };
        fps.push(plan_fingerprint("perseus", &pipe, &gpu, &db, &coarse));
        fps.push(plan_fingerprint("perseus", &pipe, &gpu, &db, &no_stretch));
        // Perturbed profiles: one stage's workload nudged by 0.01%.
        let nudged = db_in_order(&profile_pairs(&gpu, &[1.0001, 1.1, 0.9]), &order);
        fps.push(plan_fingerprint("perseus", &pipe, &gpu, &nudged, &opts));

        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "axes {i} and {j} collided");
            }
        }
    }

    #[test]
    fn cache_counts_hits_misses_and_keeps_first_insert() {
        let cache = PlanCache::new();
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(2, 4);
        let frontier = frontier_for(&gpu, &pipe, &[1.0, 1.2], Some(5e-3));
        let fp = PlanFingerprint(0xdead_beef);

        assert!(cache.get(fp).is_none());
        cache.insert(fp, PlanOutput::Frontier(frontier.clone()));
        let hit = cache.get(fp).expect("inserted entry must hit");
        assert_eq!(
            hit.to_bytes(),
            PlanOutput::Frontier(frontier.clone()).to_bytes()
        );
        // Second insert under the same fingerprint is a no-op: the cache
        // keeps the first plan (both were solved from identical inputs).
        let other = frontier_for(&gpu, &pipe, &[1.3, 0.8], Some(5e-3));
        let kept = cache.insert(fp, PlanOutput::Frontier(other));
        assert_eq!(
            kept.to_bytes(),
            PlanOutput::Frontier(frontier.clone()).to_bytes()
        );
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.inserts, stats.entries),
            (1, 1, 1, 1)
        );
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);

        cache.invalidate(fp);
        assert!(cache.get(fp).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn get_or_plan_skips_closure_on_hit() {
        let cache = PlanCache::new();
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(2, 4);
        let frontier = frontier_for(&gpu, &pipe, &[1.0, 1.2], Some(5e-3));
        let fp = PlanFingerprint(7);
        let mut solves = 0u32;
        for _ in 0..3 {
            let (_, was_hit) = cache
                .get_or_plan::<()>(fp, || {
                    solves += 1;
                    Ok(PlanOutput::Frontier(frontier.clone()))
                })
                .unwrap();
            assert_eq!(was_hit, solves > 0 && cache.stats().hits > 0);
        }
        assert_eq!(solves, 1, "only the first lookup may solve");
    }

    #[test]
    fn epoch_invalidation_sweeps_stale_entries() {
        let cache = PlanCache::new();
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(2, 4);
        let f = PlanOutput::Frontier(frontier_for(&gpu, &pipe, &[1.0, 1.2], Some(5e-3)));
        cache.insert(PlanFingerprint(1), f.clone());
        let e2 = cache.advance_epoch();
        cache.insert(PlanFingerprint(2), f);
        cache.invalidate_older_than(e2);
        assert!(
            cache.get(PlanFingerprint(1)).is_none(),
            "epoch-1 entry stays"
        );
        assert!(
            cache.get(PlanFingerprint(2)).is_some(),
            "epoch-2 entry swept"
        );
        assert_eq!(cache.stats().epoch, e2);
    }

    #[test]
    fn solver_cache_hit_is_bitwise_identical_and_skips_the_solve() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(3, 5);
        let stages = stages_with_scales(&[1.0, 1.1, 0.9]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let opts = default_opts();
        let cache = PlanCache::new();

        let cold_solver = FrontierSolver::new(&pipe);
        let (cold, hit0, fp0) = cold_solver
            .characterize_cached(&pipe, &gpu, &ctx.profiles, &opts, None, &cache)
            .unwrap();
        assert!(!hit0, "empty cache cannot hit");

        // A *different* job (fresh solver — job identity lives in the
        // solver/server, never in the fingerprint) hits the shared entry.
        let warm_solver = FrontierSolver::new(&pipe);
        let (warm, hit1, fp1) = warm_solver
            .characterize_cached(&pipe, &gpu, &ctx.profiles, &opts, None, &cache)
            .unwrap();
        assert!(hit1, "identical structure must hit");
        assert_eq!(fp0, fp1);
        assert!(
            Arc::ptr_eq(&cold, &warm),
            "a hit must share the solving job's frontier allocation, not copy it"
        );
        assert_frontiers_bit_identical(&cold, &warm);
        let ws = warm_solver.stats();
        assert_eq!(ws.runs, 0, "a cache hit must not run the solver");
        assert_eq!((ws.cache_hits, ws.cache_misses), (1, 0));
        let cs = cold_solver.stats();
        assert_eq!(
            (cs.cache_hits, cs.cache_misses, cs.cache_inserts),
            (0, 1, 1)
        );

        // And the cached PlanOutput is byte-identical to a fresh plan
        // from the Perseus planner itself.
        let fresh = Perseus::new(opts.clone()).plan(&ctx).unwrap();
        assert_eq!(cache.get(fp0).unwrap().to_bytes(), fresh.to_bytes());
    }

    #[test]
    fn durable_cache_reopens_with_entries_intact() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "perseus-core-cache-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("cache.wal");

        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(2, 4);
        let plan = PlanOutput::Frontier(frontier_for(&gpu, &pipe, &[1.0, 1.2], Some(5e-3)));
        let fps = [
            PlanFingerprint(10),
            PlanFingerprint(20),
            PlanFingerprint(30),
        ];
        {
            let cache = PlanCache::open(&wal).unwrap();
            assert!(cache.is_durable());
            for fp in fps {
                cache.insert(fp, plan.clone());
            }
            cache.invalidate(fps[2]);
            // Dropped without any shutdown handshake — a crash.
        }
        let cache = PlanCache::open(&wal).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.recovered_entries, 2, "insert - invalidate survives");
        assert_eq!(cache.fingerprints(), vec![fps[0], fps[1]]);
        assert_eq!(cache.get(fps[0]).unwrap().to_bytes(), plan.to_bytes());
        assert!(cache.get(fps[2]).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            // Equal (profiles, DAG, GPU, options) ⇒ equal fingerprint, no
            // matter how the profile database was assembled.
            #[test]
            fn fingerprint_is_insertion_order_invariant(
                n in 2usize..5,
                m in 2usize..7,
                scales in proptest::collection::vec(0.7f64..1.4, 2..5),
                seed in any::<u64>(),
            ) {
                prop_assume!(scales.len() >= n);
                let gpu = GpuSpec::a100_pcie();
                let pipe = build_pipe(n, m);
                let pairs = profile_pairs(&gpu, &scales[..n]);
                let opts = default_opts();
                let natural = db_in_order(&pairs, &(0..pairs.len()).collect::<Vec<_>>());
                let permuted = db_in_order(&pairs, &shuffled(pairs.len(), seed));
                prop_assert_eq!(
                    plan_fingerprint("perseus", &pipe, &gpu, &natural, &opts),
                    plan_fingerprint("perseus", &pipe, &gpu, &permuted, &opts)
                );
            }

            // Any single perturbed profile value ⇒ a distinct fingerprint
            // (no silent cross-job plan sharing between jobs that differ).
            #[test]
            fn fingerprint_detects_single_profile_perturbation(
                n in 2usize..5,
                m in 2usize..7,
                scales in proptest::collection::vec(0.7f64..1.4, 2..5),
                which in any::<proptest::sample::Index>(),
                nudge in prop_oneof![Just(1.0001f64), Just(0.9999f64), Just(1.01f64)],
            ) {
                prop_assume!(scales.len() >= n);
                let gpu = GpuSpec::a100_pcie();
                let pipe = build_pipe(n, m);
                let opts = default_opts();
                let base: Vec<f64> = scales[..n].to_vec();
                let mut bent = base.clone();
                let i = which.index(n);
                bent[i] *= nudge;
                let order: Vec<usize> = (0..3 * n).collect();
                let a = db_in_order(&profile_pairs(&gpu, &base), &order);
                let b = db_in_order(&profile_pairs(&gpu, &bent), &order);
                prop_assert_ne!(
                    plan_fingerprint("perseus", &pipe, &gpu, &a, &opts),
                    plan_fingerprint("perseus", &pipe, &gpu, &b, &opts)
                );
            }

            // Any DAG edge-set change (schedule kind, depth, width) ⇒ a
            // distinct fingerprint under identical profiles.
            #[test]
            fn fingerprint_detects_dag_shape_changes(
                n in 2usize..5,
                m in 2usize..7,
                scales in proptest::collection::vec(0.7f64..1.4, 4..5),
            ) {
                let gpu = GpuSpec::a100_pcie();
                let opts = default_opts();
                let pairs = profile_pairs(&gpu, &scales[..n]);
                let db = db_in_order(&pairs, &(0..pairs.len()).collect::<Vec<_>>());
                let base = build_pipe(n, m);
                let fp = |p: &PipelineDag| plan_fingerprint("perseus", p, &gpu, &db, &opts);
                prop_assert_ne!(fp(&base), fp(&build_pipe(n, m + 1)));
                prop_assert_ne!(fp(&base), fp(&build_pipe(n + 1, m)));
                let gpipe = PipelineBuilder::new(ScheduleKind::GPipe, n, m).build().unwrap();
                prop_assert_ne!(fp(&base), fp(&gpipe));
            }
        }
    }
}

mod sleep_tests {
    use super::*;
    use crate::ledger::attribute_schedule_with_sleep;
    use crate::planner::{Perseus, PlanOutput, Planner, PlannerCapabilities};
    use crate::sleep::{KareusPlanner, SleepPlan};
    use perseus_gpu::{PowerState, PowerStateModel};

    fn default_opts() -> FrontierOptions {
        FrontierOptions {
            tau_s: Some(2e-3),
            ..FrontierOptions::default()
        }
    }

    fn kareus_output(
        ctx: &PlanContext<'_>,
        power: PowerStateModel,
    ) -> (ParetoFrontier, PowerStateModel, Vec<SleepPlan>) {
        let planner = KareusPlanner::new(default_opts(), power);
        assert_eq!(planner.name(), "kareus");
        assert!(planner.capabilities().emits_sleep_plan);
        match planner.plan(ctx).unwrap() {
            PlanOutput::SleepFrontier {
                frontier,
                power,
                sleep,
            } => (frontier, power, sleep),
            other => panic!("kareus must emit a sleep frontier, got {other:?}"),
        }
    }

    #[test]
    fn kareus_dominates_perseus_at_every_deadline() {
        let gpu = GpuSpec::a100_pcie();
        // A deep, imbalanced pipeline with few microbatches: long bubbles.
        let pipe = build_pipe(4, 5);
        let stages = stages_with_scales(&[1.0, 1.3, 0.8, 1.2]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let power = PowerStateModel::default_for(&gpu);
        let (frontier, _, sleep) = kareus_output(&ctx, power);
        let perseus = Perseus::new(default_opts()).plan(&ctx).unwrap();
        assert_frontiers_bit_identical(&frontier, perseus.as_frontier().unwrap());

        let mut any_strict = false;
        for (point, plan) in frontier.points().iter().zip(&sleep) {
            let t_prime = Some(point.planned_time_s);
            let base = point.schedule.energy_report(&ctx, t_prime).total_j();
            let joint = point
                .schedule
                .energy_report_with_sleep(&ctx, t_prime, Some(plan))
                .total_j();
            assert!(
                joint <= base + 1e-9,
                "kareus used more energy than perseus at T'={t_prime:?}"
            );
            if plan.window_count() > 0 {
                assert!(joint < base, "windows inserted but nothing saved");
                any_strict = true;
            }
        }
        assert!(
            any_strict,
            "a bubbly pipeline must yield at least one profitable window"
        );
    }

    #[test]
    fn sleep_windows_fit_inside_the_iteration() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(4, 6);
        let stages = stages_with_scales(&[1.0, 1.1, 0.95, 1.2]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let (frontier, _, sleep) = kareus_output(&ctx, PowerStateModel::default_for(&gpu));
        assert_eq!(sleep.len(), frontier.len());
        for (point, plan) in frontier.points().iter().zip(&sleep) {
            for stage in 0..ctx.pipe.n_stages {
                let mut prev_end = 0.0f64;
                for w in plan.stage_windows(stage) {
                    assert!(w.start_s >= prev_end - 1e-12, "windows overlap");
                    assert!(w.end_s <= point.schedule.time_s + 1e-9);
                    // Profitable by construction: the span amortizes the
                    // transition.
                    assert!(w.span_s() > w.entry_s + w.exit_s);
                    assert!(w.saved_j(gpu.blocking_w) > 0.0);
                    prev_end = w.end_s;
                }
            }
        }
    }

    #[test]
    fn zero_latency_zero_power_state_reclaims_every_bubble() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(4, 4);
        let stages = stages_with_scales(&[1.0, 1.25, 0.9, 1.1]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let power = PowerStateModel {
            states: vec![PowerState {
                name: "free-sleep",
                power_w: 0.0,
                entry_s: 0.0,
                exit_s: 0.0,
            }],
        };
        let (frontier, _, sleep) = kareus_output(&ctx, power);
        for (point, plan) in frontier.points().iter().zip(&sleep) {
            // Every positive-length bubble is reclaimed: the idle lane of
            // the sleep-aware attribution collapses to (float) zero.
            let attr = attribute_schedule_with_sleep(&ctx, &point.schedule, None, Some(plan));
            let idle = attr.kind(EnergyKind::Idle).useful_j;
            let total = attr.total.total_j();
            assert!(
                idle.abs() <= 1e-9 * total.max(1.0),
                "idle lane not fully reclaimed: {idle} J of {total} J"
            );
            // A zero-power state draws nothing, so the static lane is
            // free.
            assert_eq!(attr.kind(EnergyKind::StaticSleep).useful_j, 0.0);
        }
    }

    #[test]
    fn unamortizable_latency_degenerates_to_perseus() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(3, 6);
        let stages = stages_with_scales(&[1.0, 1.2, 0.9]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        // Entry alone outlasts any bubble a sub-second iteration can hold.
        let power = PowerStateModel {
            states: vec![PowerState {
                name: "glacial",
                power_w: 1.0,
                entry_s: 1e6,
                exit_s: 1e6,
            }],
        };
        let (frontier, _, sleep) = kareus_output(&ctx, power);
        let perseus = Perseus::new(default_opts()).plan(&ctx).unwrap();
        assert_frontiers_bit_identical(&frontier, perseus.as_frontier().unwrap());
        assert!(sleep.iter().all(SleepPlan::is_empty));
        // Bit-identical selection and energy at every frontier deadline.
        let joint = PlanOutput::SleepFrontier {
            frontier: frontier.clone(),
            power: PowerStateModel::none(),
            sleep,
        };
        for point in perseus.as_frontier().unwrap().points() {
            let t = Some(point.planned_time_s);
            let a = joint.select(t);
            let b = perseus.select(t);
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            let ja = a
                .energy_report_with_sleep(&ctx, t, joint.sleep_plan(t))
                .total_j();
            let jb = b.energy_report(&ctx, t).total_j();
            assert_eq!(ja.to_bits(), jb.to_bits());
        }
    }

    #[test]
    fn kareus_rejects_invalid_power_states() {
        let gpu = GpuSpec::a100_pcie();
        let pipe = build_pipe(2, 4);
        let stages = stages_with_scales(&[1.0, 1.1]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let power = PowerStateModel {
            states: vec![PowerState {
                name: "hot",
                power_w: gpu.blocking_w * 2.0,
                entry_s: 0.0,
                exit_s: 0.0,
            }],
        };
        let planner = KareusPlanner::new(default_opts(), power);
        assert!(matches!(
            planner.plan(&ctx),
            Err(crate::context::CoreError::PowerState(_))
        ));
    }

    #[test]
    fn default_planner_capabilities_are_baseline() {
        let perseus = Perseus::new(default_opts());
        assert_eq!(perseus.capabilities(), PlannerCapabilities::default());
        assert!(!perseus.capabilities().emits_sleep_plan);
    }

    #[test]
    fn sleep_frontier_persists_and_round_trips() {
        use perseus_store::{ByteReader, ByteWriter, Persist};

        let gpu = GpuSpec::a40();
        let pipe = build_pipe(3, 5);
        let stages = stages_with_scales(&[1.0, 1.15, 0.9]);
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
        let planner = KareusPlanner::new(default_opts(), PowerStateModel::default_for(&gpu));
        let plan = planner.plan(&ctx).unwrap();

        let mut w = ByteWriter::new();
        plan.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = PlanOutput::decode(&mut r).unwrap();
        match (&plan, &back) {
            (
                PlanOutput::SleepFrontier {
                    frontier: fa,
                    power: pa,
                    sleep: sa,
                },
                PlanOutput::SleepFrontier {
                    frontier: fb,
                    power: pb,
                    sleep: sb,
                },
            ) => {
                assert_frontiers_bit_identical(fa, fb);
                assert_eq!(pa, pb);
                assert_eq!(sa, sb);
            }
            _ => panic!("round trip changed the PlanOutput variant"),
        }

        // A truncated sleep vector is refused, not silently accepted.
        if let PlanOutput::SleepFrontier {
            frontier,
            power,
            mut sleep,
        } = plan
        {
            sleep.pop();
            let broken = PlanOutput::SleepFrontier {
                frontier,
                power,
                sleep,
            };
            let mut w = ByteWriter::new();
            broken.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert!(PlanOutput::decode(&mut r).is_err());
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            // The conservation identity survives the sleep overlay: the
            // sleep-aware attribution total equals the sleep-aware Eq. 3
            // total to 1e-9 relative, and both drop below the
            // frequency-only totals by exactly the plan's savings.
            #[test]
            fn sleep_attribution_conserves_energy(
                n in 2usize..5,
                m in 2usize..7,
                scales in proptest::collection::vec(0.7f64..1.4, 4..5),
                t_factor in -0.5f64..2.5,
            ) {
                let gpu = GpuSpec::a100_pcie();
                let pipe = build_pipe(n, m);
                let stages = stages_with_scales(&scales[..n]);
                let ctx =
                    PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
                let planner = KareusPlanner::new(
                    default_opts(),
                    PowerStateModel::default_for(&gpu),
                );
                let plan = planner.plan(&ctx).unwrap();
                let t_prime = if t_factor < -0.25 {
                    None
                } else {
                    Some(plan.select(None).time_s * t_factor)
                };
                let sched = plan.select(t_prime);
                let sleep = plan.sleep_plan(t_prime);
                prop_assert!(sleep.is_some(), "kareus always carries a plan");

                let attr =
                    attribute_schedule_with_sleep(&ctx, sched, t_prime, sleep);
                let report = sched.energy_report_with_sleep(&ctx, t_prime, sleep);
                let total = report.total_j();
                prop_assert!(
                    (attr.total.total_j() - total).abs() <= 1e-9 * total.max(1.0),
                    "sleep conservation violated: attributed {} vs Eq.3 {}",
                    attr.total.total_j(),
                    total
                );
                let stage_sum: f64 =
                    attr.per_stage.iter().map(|b| b.total_j()).sum();
                let kind_sum: f64 =
                    attr.per_kind.iter().map(|b| b.total_j()).sum();
                prop_assert!((stage_sum - total).abs() <= 1e-9 * total.max(1.0));
                prop_assert!((kind_sum - total).abs() <= 1e-9 * total.max(1.0));

                // Differential claim at this deadline: joint never burns
                // more than frequency-only, and the gap is exactly the
                // plan's accounted savings.
                let base = sched.energy_report(&ctx, t_prime).total_j();
                let saved = sleep.unwrap().saved_j(gpu.blocking_w);
                prop_assert!(saved >= 0.0);
                prop_assert!(total <= base + 1e-9 * base.max(1.0));
                prop_assert!(
                    ((base - total) - saved).abs() <= 1e-9 * base.max(1.0)
                );
            }
        }
    }
}
