//! The [`Planner`] trait: one interface over every energy policy.
//!
//! Perseus and the baselines it is compared against (§6.1) differ in what
//! they compute — a single schedule, a full time–energy frontier, or a
//! sweep of candidate schedules — but a deployment decision always reduces
//! to "given the straggler iteration time `T'` (or none), which schedule
//! runs?". [`PlanOutput`] captures the three output shapes and
//! [`PlanOutput::select`] answers that question uniformly, so the cluster
//! emulator and the planning server can dispatch any policy through a
//! `dyn Planner` without per-policy match arms.
//!
//! Crucially, every planner's output is independent of `T'`: the straggler
//! deadline only affects *selection*, never *planning*. That makes
//! [`PlanOutput`] cacheable — plan once per (pipeline, profiles), select
//! per straggler event.

use perseus_gpu::{FreqMHz, PowerStateModel};

use crate::context::{CoreError, PlanContext};
use crate::frontier::{characterize, EnergySchedule, FrontierOptions, ParetoFrontier};
use crate::sleep::{insert_sleep, SleepPlan};

/// What a planner produced for one pipeline: the `T'`-independent artifact
/// a deployment schedule is selected from.
#[derive(Debug, Clone)]
pub enum PlanOutput {
    /// A single schedule, deployed regardless of stragglers (AllMaxFreq,
    /// MinEnergyOracle, EnvPipe).
    Schedule(EnergySchedule),
    /// A full iteration time–energy Pareto frontier; stragglers are
    /// answered by lookup at `T_opt = min(T*, T')` (Perseus).
    Frontier(ParetoFrontier),
    /// A sweep of candidate schedules plus the deadline to honor when no
    /// straggler is present; selection picks the lowest-energy candidate
    /// meeting the deadline (ZeusGlobal, ZeusPerStage).
    Sweep {
        /// Candidate schedules, in the planner's sweep order.
        schedules: Vec<EnergySchedule>,
        /// Deadline substituted for `T'` when no straggler is known —
        /// typically the pipeline's own all-max iteration time, so the
        /// policy never slows training unprompted.
        no_straggler_deadline_s: f64,
    },
    /// A frontier whose every point carries a per-stage sleep schedule
    /// reclaiming static energy from pipeline bubbles (Kareus). Selection
    /// is identical to `Frontier`; [`PlanOutput::sleep_plan`] exposes the
    /// sleep schedule of the selected point.
    SleepFrontier {
        /// The underlying time–energy frontier.
        frontier: ParetoFrontier,
        /// The power-state menu the sleep plans were drawn from (kept so
        /// frequency-cap re-clamps can re-run sleep insertion).
        power: PowerStateModel,
        /// One sleep plan per frontier point, in frontier order.
        sleep: Vec<SleepPlan>,
    },
}

impl PlanOutput {
    /// Picks the schedule to deploy for straggler iteration time `t_prime`
    /// (`None` = no straggler known).
    ///
    /// * `Schedule` — returned as-is; the policy is straggler-unaware.
    /// * `Frontier` — frontier lookup at `t_prime` (Eq. 2's
    ///   `T_opt = min(T*, T')` is applied by the lookup itself); with no
    ///   straggler, the fastest frontier point.
    /// * `Sweep` — the lowest-energy candidate whose iteration time meets
    ///   the deadline (`t_prime`, or the sweep's no-straggler deadline);
    ///   if none meets it, the candidate that was deployed anyway in the
    ///   reference implementation: the first sweep entry.
    ///
    /// # Panics
    ///
    /// Panics if a `Sweep` holds no schedules; planners never produce
    /// empty sweeps.
    pub fn select(&self, t_prime: Option<f64>) -> &EnergySchedule {
        match self {
            PlanOutput::Schedule(s) => s,
            PlanOutput::Frontier(f) | PlanOutput::SleepFrontier { frontier: f, .. } => {
                let t = t_prime.unwrap_or_else(|| f.t_min());
                &f.lookup(t).schedule
            }
            PlanOutput::Sweep {
                schedules,
                no_straggler_deadline_s,
            } => {
                let deadline = t_prime.unwrap_or(*no_straggler_deadline_s);
                let mut best: Option<&EnergySchedule> = None;
                for s in schedules {
                    if s.time_s <= deadline || best.is_none() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                s.time_s <= deadline
                                    && (b.time_s > deadline || s.compute_j < b.compute_j)
                            }
                        };
                        if better {
                            best = Some(s);
                        }
                    }
                }
                best.expect("sweep is non-empty")
            }
        }
    }

    /// The single schedule, if this is a `Schedule` output.
    pub fn as_schedule(&self) -> Option<&EnergySchedule> {
        match self {
            PlanOutput::Schedule(s) => Some(s),
            _ => None,
        }
    }

    /// The frontier, if this is a `Frontier` or `SleepFrontier` output.
    pub fn as_frontier(&self) -> Option<&ParetoFrontier> {
        match self {
            PlanOutput::Frontier(f) | PlanOutput::SleepFrontier { frontier: f, .. } => Some(f),
            _ => None,
        }
    }

    /// The sleep plan accompanying the schedule [`PlanOutput::select`]
    /// picks for `t_prime`, if this output carries one.
    ///
    /// Uses the same frontier lookup as `select`, so the returned plan
    /// always matches the selected schedule. `None` for frequency-only
    /// outputs — callers treat that as "never sleeps".
    pub fn sleep_plan(&self, t_prime: Option<f64>) -> Option<&SleepPlan> {
        match self {
            PlanOutput::SleepFrontier {
                frontier, sleep, ..
            } => {
                let t = t_prime.unwrap_or_else(|| frontier.t_min());
                sleep.get(frontier.lookup_index(t))
            }
            _ => None,
        }
    }

    /// The candidate sweep, if this is a `Sweep` output.
    pub fn as_sweep(&self) -> Option<&[EnergySchedule]> {
        match self {
            PlanOutput::Sweep { schedules, .. } => Some(schedules),
            _ => None,
        }
    }

    /// Consumes the output into its single schedule, if any.
    pub fn into_schedule(self) -> Option<EnergySchedule> {
        match self {
            PlanOutput::Schedule(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the output into its frontier, if any.
    pub fn into_frontier(self) -> Option<ParetoFrontier> {
        match self {
            PlanOutput::Frontier(f) | PlanOutput::SleepFrontier { frontier: f, .. } => Some(f),
            _ => None,
        }
    }

    /// Consumes the output into its candidate sweep, if any.
    pub fn into_sweep(self) -> Option<Vec<EnergySchedule>> {
        match self {
            PlanOutput::Sweep { schedules, .. } => Some(schedules),
            _ => None,
        }
    }

    /// Re-clamps this output to a GPU frequency cap (§2.3 power/thermal
    /// capping) without re-planning: each schedule is re-realized with
    /// frequencies limited to `cap`, and a frontier is re-clamped via
    /// [`ParetoFrontier::clamp_to_freq_cap`]. Selection semantics are
    /// unchanged — the cap shifts what each choice *realizes*, not how
    /// choices are made — so cached outputs stay cacheable under caps.
    ///
    /// # Errors
    ///
    /// Propagates realization failures from the profile database.
    pub fn clamp_freq_cap(
        &self,
        ctx: &PlanContext<'_>,
        cap: FreqMHz,
    ) -> Result<PlanOutput, CoreError> {
        let recap = |s: &EnergySchedule| {
            EnergySchedule::realize_with_cap(ctx, s.planned.clone(), Some(cap))
        };
        Ok(match self {
            PlanOutput::Schedule(s) => PlanOutput::Schedule(recap(s)?),
            PlanOutput::Frontier(f) => PlanOutput::Frontier(f.clamp_to_freq_cap(ctx, cap)?),
            PlanOutput::Sweep {
                schedules,
                no_straggler_deadline_s,
            } => PlanOutput::Sweep {
                schedules: schedules.iter().map(recap).collect::<Result<_, _>>()?,
                no_straggler_deadline_s: *no_straggler_deadline_s,
            },
            PlanOutput::SleepFrontier {
                frontier, power, ..
            } => {
                // The cap changes every point's realized timeline, so the
                // sleep windows are re-derived from the clamped schedules
                // rather than carried over.
                let clamped = frontier.clamp_to_freq_cap(ctx, cap)?;
                let sleep = clamped
                    .points()
                    .iter()
                    .map(|p| insert_sleep(ctx, &p.schedule, power))
                    .collect();
                PlanOutput::SleepFrontier {
                    frontier: clamped,
                    power: power.clone(),
                    sleep,
                }
            }
        })
    }
}

/// What a planner's outputs can carry, beyond the baseline "a schedule
/// selectable by `T'`".
///
/// Registry consumers branch on capabilities instead of string-matching
/// [`Planner::name`] — adding a planner never requires touching consumer
/// `match`es again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerCapabilities {
    /// The planner's outputs carry per-stage sleep schedules
    /// ([`PlanOutput::sleep_plan`] can return `Some`).
    pub emits_sleep_plan: bool,
}

/// An energy policy: plans the `T'`-independent artifact for one pipeline.
///
/// Implementations must be `Send + Sync` — the planning server runs `plan`
/// on worker threads and the emulator shares planners behind trait
/// objects.
pub trait Planner: Send + Sync {
    /// Stable identifier used for registry lookup and reporting.
    fn name(&self) -> &'static str;

    /// What this planner's outputs carry. The default is the baseline
    /// capability set (frequency plans only); planners that emit more
    /// override it.
    fn capabilities(&self) -> PlannerCapabilities {
        PlannerCapabilities::default()
    }

    /// Plans against `ctx`. The result depends only on the pipeline and
    /// its profiles, never on straggler state; selection happens in
    /// [`PlanOutput::select`].
    ///
    /// # Errors
    ///
    /// Propagates profile, fit, and characterization failures.
    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError>;
}

/// Perseus itself as a [`Planner`]: characterizes the Pareto frontier
/// (Algorithm 1); selection is the §3.1 straggler lookup.
#[derive(Debug, Clone, Default)]
pub struct Perseus {
    /// Characterization options.
    pub opts: FrontierOptions,
}

impl Perseus {
    /// A Perseus planner with the given characterization options.
    pub fn new(opts: FrontierOptions) -> Perseus {
        Perseus { opts }
    }
}

impl Planner for Perseus {
    fn name(&self) -> &'static str {
        "perseus"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        Ok(PlanOutput::Frontier(characterize(ctx, &self.opts)?))
    }
}
