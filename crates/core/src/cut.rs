//! `GetNextPareto` (paper Algorithm 2 + Appendix D): shorten every critical
//! path by (up to) the unit time `τ` with the minimum possible energy
//! increase, via a minimum cut on the Capacity DAG.

use perseus_dag::{CriticalDag, Dag, NodeId, TimingAnalysis};
use perseus_flow::{BoundedFlowProblem, BoundedFlowSolution, WarmStart};
use perseus_pipeline::PipelineDag;
use perseus_telemetry::{span, Telemetry};

use crate::context::PlanContext;

/// Payload of an edge of the edge-centric computation DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EcEdge {
    /// A frequency-controllable computation (pipeline DAG node).
    Comp(NodeId),
    /// A constant-time operation: fixed duration, single frequency choice.
    Fixed(f64),
    /// A pure dependency (zero duration).
    Dep,
}

/// Result of one `GetNextPareto` step.
#[derive(Debug, Clone, PartialEq)]
pub enum CutOutcome {
    /// Durations were modified; the makespan shrank by the applied step.
    Reduced {
        /// New makespan after the modification.
        new_makespan: f64,
        /// Computations sped up (pipeline DAG node ids).
        sped_up: Vec<NodeId>,
        /// Computations slowed down.
        slowed_down: Vec<NodeId>,
    },
    /// Every s-t cut crosses an unmodifiable (already-fastest or fixed)
    /// edge: the iteration time cannot be reduced further.
    AtMinimumTime,
}

/// The reusable edge-centric view of a pipeline DAG (Algorithm 2, step ②):
/// each pipeline node `v` splits into `v_in → v_out` carrying the
/// computation, and each dependency becomes a zero-duration edge. The
/// structure (and hence the topological order) never changes across
/// frontier iterations — only durations do — so
/// [`characterize`](crate::characterize) builds it once.
#[derive(Debug, Clone)]
pub struct CutSolver {
    ec: Dag<(), EcEdge>,
    halves: Vec<(NodeId, NodeId)>,
    order: Vec<NodeId>,
}

impl CutSolver {
    /// Builds the edge-centric DAG for `pipe`.
    pub fn new(pipe: &PipelineDag) -> CutSolver {
        let (ec, halves) = edge_centric(pipe);
        let order = ec.topo_order().expect("pipeline DAGs are acyclic");
        CutSolver { ec, halves, order }
    }
}

fn edge_centric(pipe: &PipelineDag) -> (Dag<(), EcEdge>, Vec<(NodeId, NodeId)>) {
    let mut ec: Dag<(), EcEdge> = Dag::with_capacity(
        2 * pipe.dag.node_count(),
        pipe.dag.node_count() + pipe.dag.edge_count(),
    );
    let mut halves = Vec::with_capacity(pipe.dag.node_count());
    for id in pipe.dag.node_ids() {
        let v_in = ec.add_node(());
        let v_out = ec.add_node(());
        let payload = match pipe.dag.node(id) {
            perseus_pipeline::PipeNode::Comp(_) => EcEdge::Comp(id),
            perseus_pipeline::PipeNode::Fixed { time_s, .. } => EcEdge::Fixed(*time_s),
            _ => EcEdge::Dep,
        };
        ec.add_edge_unchecked(v_in, v_out, payload);
        halves.push((v_in, v_out));
    }
    for e in pipe.dag.edge_refs() {
        let (_, u_out) = halves[e.src.index()];
        let (v_in, _) = halves[e.dst.index()];
        ec.add_edge_unchecked(u_out, v_in, EcEdge::Dep);
    }
    (ec, halves)
}

/// Counters accumulated by a [`SolverArena`] across Phillips–Dessouky
/// iterations. `augmenting_paths_saved` estimates the searches a warm hit
/// avoided as the path count of the most recent cold solve minus the hit's
/// own count (the honest measurement — actual cold vs warm full-frontier
/// totals — is what the `solver_suite` bench gates on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bounded min-cut solves performed.
    pub solves: u64,
    /// Solves that reused the previous iteration's flow.
    pub warm_start_hits: u64,
    /// Augmenting paths actually searched, warm and cold combined.
    pub augmenting_paths: u64,
    /// Estimated paths avoided by warm starts (see type docs).
    pub augmenting_paths_saved: u64,
}

/// Preallocated workspace for the Phillips–Dessouky iteration: every
/// buffer `get_next_pareto_arena` needs — the compacted
/// [`BoundedFlowProblem`], its solution, the contraction maps, cut
/// scratch — plus the [`WarmStart`] handle that carries the previous
/// iteration's max flow forward. Build one per pipeline characterization
/// and reuse it across all frontier steps; consecutive steps patch
/// capacities into the same buffers instead of reallocating, and (while
/// the critical topology is stable) re-augment instead of re-solving.
#[derive(Debug)]
pub struct SolverArena {
    warm: WarmStart,
    warm_enabled: bool,
    problem: BoundedFlowProblem,
    relaxed: BoundedFlowProblem,
    sol: BoundedFlowSolution,
    caps: Vec<EdgeCap>,
    contractible: Vec<bool>,
    compact: Vec<Option<usize>>,
    edge_meta: Vec<(Option<NodeId>, Option<NodeId>)>,
    cut_scratch: Vec<usize>,
    speed_targets: Vec<NodeId>,
    backup: Vec<(NodeId, f64)>,
    /// Path count of the most recent cold solve (the per-hit savings
    /// baseline).
    last_cold_paths: u64,
    stats: ArenaStats,
}

impl Default for SolverArena {
    fn default() -> SolverArena {
        SolverArena::new()
    }
}

impl SolverArena {
    /// A fresh arena with warm starting enabled.
    pub fn new() -> SolverArena {
        SolverArena {
            warm: WarmStart::new(),
            warm_enabled: true,
            problem: BoundedFlowProblem::default(),
            relaxed: BoundedFlowProblem::default(),
            sol: BoundedFlowSolution::default(),
            caps: Vec::new(),
            contractible: Vec::new(),
            compact: Vec::new(),
            edge_meta: Vec::new(),
            cut_scratch: Vec::new(),
            speed_targets: Vec::new(),
            backup: Vec::new(),
            last_cold_paths: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Enables or disables warm starting. Disabled, every solve rebuilds
    /// the flow network from scratch through the same code path — the cold
    /// baseline the `solver_suite` bench compares against. Outputs are
    /// identical either way; only the work differs.
    pub fn set_warm(&mut self, enabled: bool) {
        self.warm_enabled = enabled;
        if !enabled {
            self.warm.invalidate();
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

/// Capacity-DAG annotation of one critical edge before contraction.
#[derive(Debug, Clone, Copy)]
struct EdgeCap {
    lower: f64,
    upper: f64,
    /// Node to speed up if a forward cut selects this edge.
    speed: Option<NodeId>,
    /// Node to slow down if a backward cut crosses this edge.
    slow: Option<NodeId>,
    /// Energy reclaimed per τ of slowing `slow` (tie-break for chains).
    slow_gain: f64,
}

/// One step along the frontier: reduce the DAG's execution time with
/// minimal energy increase (see [`get_next_pareto_with`]).
pub fn get_next_pareto(ctx: &PlanContext<'_>, planned: &mut [f64], tau: f64) -> CutOutcome {
    let solver = CutSolver::new(ctx.pipe);
    get_next_pareto_with(ctx, &solver, planned, tau)
}

/// [`get_next_pareto`] against a prebuilt [`CutSolver`] (the fast path for
/// the iterative sweep).
///
/// `planned` holds the current planned duration of every pipeline DAG node
/// (by node index) and is modified in place on success.
///
/// The capacity of each critical computation follows Appendix D Eq. 8
/// literally: `e⁺ = e(t−τ) − e(t)` to speed up, `e⁻ = e(t) − e(t+τ)`
/// reclaimed by slowing down, both read off the fitted exponential of the
/// *measured computation energy*. (Augmenting these with blocking-power
/// terms looks tempting — slowing converts blocking watts into compute
/// watts — but it creates negative-value cuts that violate Hoffman's
/// feasibility condition for flows with lower bounds; the paper's
/// formulation avoids this by keeping `P_blocking` out of the capacities.)
///
/// Engineering refinements over the paper's pseudocode (all standard in
/// the time–cost tradeoff literature — Phillips–Dessouky / Hochbaum
/// repeated cuts; end states are unchanged, see the inline notes):
///
/// * **Adaptive steps** — the applied step is `min(τ, smallest headroom on
///   the cut)`, so sub-τ duration crumbs never wedge the sweep.
/// * **Relaxed lower bounds + stretch pass** — slowdown rewards are
///   removed from the flow (killing the expensive feasibility phase);
///   [`characterize`](crate::characterize) instead stretches every
///   computation into its schedule gap after each step, which dominates
///   any backward-crossing slowdown because fitted energy decreases on
///   `[t_min, t_max]`.
/// * **Series contraction** — chains of degree-(1,1) nodes in the Critical
///   DAG compose as `upper = min, lower = max`; a cut crosses a chain at
///   its cheapest edge.
pub fn get_next_pareto_with(
    ctx: &PlanContext<'_>,
    solver: &CutSolver,
    planned: &mut [f64],
    tau: f64,
) -> CutOutcome {
    get_next_pareto_traced(ctx, solver, planned, tau, &Telemetry::disabled())
}

/// [`get_next_pareto_with`] with instrumentation: counts cut solves and
/// infeasible-retry re-solves, and threads `telemetry` into the bounded
/// max-flow solver. Equivalent to [`get_next_pareto_arena`] against a
/// throwaway arena (every solve cold).
pub fn get_next_pareto_traced(
    ctx: &PlanContext<'_>,
    solver: &CutSolver,
    planned: &mut [f64],
    tau: f64,
    telemetry: &Telemetry,
) -> CutOutcome {
    let mut arena = SolverArena::new();
    get_next_pareto_arena(ctx, solver, planned, tau, &mut arena, telemetry)
}

/// [`get_next_pareto_traced`] against a reusable [`SolverArena`]: the
/// compacted problem, solution, and cut buffers live in the arena
/// (capacity patches instead of rebuilds), and when consecutive calls
/// produce the same compacted topology — the common case along a frontier,
/// where only durations drift — the max flow is warm-started from the
/// previous iteration's flow instead of re-derived from zero.
///
/// Output is bit-identical to the cold path: the solver extracts the
/// minimal source-side min cut, which is unique across all maximum flows.
pub fn get_next_pareto_arena(
    ctx: &PlanContext<'_>,
    solver: &CutSolver,
    planned: &mut [f64],
    tau: f64,
    arena: &mut SolverArena,
    telemetry: &Telemetry,
) -> CutOutcome {
    if telemetry.is_enabled() {
        telemetry.counter("perseus_cut_solves_total").inc();
    }
    // Disjoint borrows of every arena buffer; the construction below fills
    // them in place instead of allocating.
    let SolverArena {
        warm,
        warm_enabled,
        problem,
        relaxed,
        sol,
        caps,
        contractible,
        compact,
        edge_meta,
        cut_scratch,
        speed_targets,
        backup,
        last_cold_paths,
        stats,
    } = arena;
    let (ec, halves) = (&solver.ec, &solver.halves);
    let dur = |_: perseus_dag::EdgeId, e: &EcEdge| match e {
        EcEdge::Comp(n) => planned[n.index()],
        EcEdge::Fixed(t) => *t,
        EcEdge::Dep => 0.0,
    };
    let timing = TimingAnalysis::compute_with_order(ec, &solver.order, dur);
    let makespan = timing.makespan;
    // Slack below τ/2 counts as critical: folding near-critical paths into
    // the cut guarantees each iteration advances by at least ~τ/2 (instead
    // of crawling from one microscopic slack event to the next) while
    // keeping every step overshoot-free. The price is a slightly
    // conservative cut — a few more edges constrained than strictly
    // necessary — which costs marginal energy, not correctness.
    let tol = (tau * 0.5).max(makespan * 1e-12);

    let crit: CriticalDag<(), EcEdge> = CriticalDag::extract(ec, &timing, dur, tol);

    // The split edges of the pipeline source/sink are always critical.
    let (source_in, _) = halves[ctx.pipe.source.index()];
    let (_, sink_out) = halves[ctx.pipe.sink.index()];
    let (Some(s), Some(t)) = (
        crit.node_map[source_in.index()],
        crit.node_map[sink_out.index()],
    ) else {
        return CutOutcome::AtMinimumTime;
    };

    // Annotate each critical edge with its Eq. 8 capacity interval.
    let inf = BoundedFlowProblem::unbounded();
    let tiny = tau * 1e-9;
    let cg = &crit.graph;
    caps.clear();
    caps.extend(cg.edge_refs().map(|r| match r.payload {
        EcEdge::Comp(n) => {
            let info = ctx.info(*n).expect("comp node has plan info");
            let tcur = planned[n.index()];
            let can_speed = tcur > info.t_min + tiny;
            let can_slow = tcur < info.t_max - tiny;
            // Price the capacities over steps CLAMPED to the measured
            // range, normalized back to a per-τ rate so edges stay
            // comparable. Evaluating the exponential below t_min (or
            // above t_max) extrapolates where it was never fitted and
            // can blow capacities up by orders of magnitude, which both
            // misprices the cut and poisons the flow solver's relative
            // epsilon.
            let e_plus = if can_speed {
                let t_to = (tcur - tau).max(info.t_min);
                (info.fit.energy(t_to) - info.fit.energy(tcur)).max(0.0) * (tau / (tcur - t_to))
            } else {
                0.0
            };
            let e_minus = if can_slow {
                let t_to = (tcur + tau).min(info.t_max);
                (info.fit.energy(tcur) - info.fit.energy(t_to)).max(0.0) * (tau / (t_to - tcur))
            } else {
                0.0
            };
            // Lower bounds (the Eq. 8 slowdown rewards e⁻) are relaxed
            // to zero: the post-step stretch pass (see `characterize`)
            // reclaims every gap a backward-crossing slowdown would
            // have exploited, because the fitted energy is decreasing
            // on [t_min, t_max] — zero-slack schedules dominate. This
            // removes the expensive feasibility phase of the
            // lower-bounded max flow while keeping the same end
            // states. e⁻ still breaks ties for which chain member to
            // slow when a backward cut edge does appear.
            match (can_speed, can_slow) {
                (true, true) => EdgeCap {
                    lower: 0.0,
                    upper: e_plus,
                    speed: Some(*n),
                    slow: Some(*n),
                    slow_gain: e_minus,
                },
                // Slowest: cannot slow further, may speed.
                (true, false) => EdgeCap {
                    lower: 0.0,
                    upper: e_plus,
                    speed: Some(*n),
                    slow: None,
                    slow_gain: 0.0,
                },
                // Fastest: cannot speed, may slow.
                (false, true) => EdgeCap {
                    lower: 0.0,
                    upper: inf,
                    speed: None,
                    slow: Some(*n),
                    slow_gain: e_minus,
                },
                (false, false) => EdgeCap {
                    lower: 0.0,
                    upper: inf,
                    speed: None,
                    slow: None,
                    slow_gain: 0.0,
                },
            }
        }
        EcEdge::Fixed(_) | EcEdge::Dep => EdgeCap {
            lower: 0.0,
            upper: inf,
            speed: None,
            slow: None,
            slow_gain: 0.0,
        },
    }));

    // Series contraction: a node (other than s/t) with exactly one
    // incoming and one outgoing edge is a pass-through; flow through a
    // chain equals flow through each of its edges, so the chain behaves
    // like one edge with `upper = min(upper_i)` (a forward cut picks the
    // cheapest edge to speed) and `lower = max(lower_i)` (a backward cut
    // slows the edge with the largest reclaim).
    contractible.clear();
    contractible.extend(
        cg.node_ids()
            .map(|v| v != s && v != t && cg.in_degree(v) == 1 && cg.out_degree(v) == 1),
    );
    compact.clear();
    compact.resize(cg.node_count(), None);
    let mut n_compact = 0usize;
    for v in cg.node_ids() {
        if !contractible[v.index()] {
            compact[v.index()] = Some(n_compact);
            n_compact += 1;
        }
    }
    problem.reset(n_compact);
    // Per contracted edge: (speed target, slow target).
    edge_meta.clear();
    for u in cg.node_ids() {
        if contractible[u.index()] {
            continue;
        }
        for first in cg.out_edges(u) {
            let mut cap = caps[first.id.index()];
            let mut head = first.dst;
            while contractible[head.index()] {
                let next = cg.out_edges(head).next().expect("out-degree 1");
                let c = caps[next.id.index()];
                if c.upper < cap.upper {
                    cap.upper = c.upper;
                    cap.speed = c.speed;
                }
                // A backward cut slows ONE chain member; pick the one with
                // the largest reclaim.
                if c.slow_gain > cap.slow_gain {
                    cap.slow_gain = c.slow_gain;
                    cap.slow = c.slow;
                }
                if c.lower > cap.lower {
                    cap.lower = c.lower;
                }
                head = next.dst;
            }
            // An infeasible interval can only arise from composing a large
            // slowdown reward with a small speedup cost along one chain —
            // relax the reward; the cut stays valid, marginally pricier.
            if cap.lower > cap.upper {
                cap.lower = cap.upper;
            }
            problem.add_edge(
                compact[u.index()].expect("non-contractible"),
                compact[head.index()].expect("non-contractible"),
                cap.lower,
                cap.upper,
            );
            edge_meta.push((cap.speed, cap.slow));
        }
    }
    let (s, t) = (
        compact[s.index()].expect("terminal"),
        compact[t.index()].expect("terminal"),
    );

    if !*warm_enabled {
        warm.invalidate();
    }
    stats.solves += 1;
    let solved = {
        let _span = span!(telemetry, "cut_solve");
        problem.solve_warm_into(s, t, warm, sol, telemetry)
    };
    match solved {
        Ok(hit) => {
            let paths = sol.augmenting_paths;
            stats.augmenting_paths += paths;
            if hit {
                stats.warm_start_hits += 1;
                let saved = last_cold_paths.saturating_sub(paths);
                stats.augmenting_paths_saved += saved;
                if telemetry.is_enabled() {
                    telemetry.counter("perseus_cut_warm_start_hits_total").inc();
                    telemetry
                        .counter("perseus_cut_augmenting_paths_saved_total")
                        .add(saved);
                }
            } else {
                *last_cold_paths = paths;
            }
        }
        Err(perseus_flow::FlowError::Infeasible { .. }) => {
            // Hoffman's condition can still fail in rare configurations
            // (a negative-value cut exists: some simultaneous speed-up /
            // slow-down would reduce both time and fitted energy). Retry
            // with the slowdown rewards removed: every cut is then
            // non-negative and feasibility is guaranteed, at the cost of a
            // (slightly) less energy-efficient step. Backward-crossing
            // slowable edges are still slowed when applying the cut.
            if telemetry.is_enabled() {
                telemetry.counter("perseus_cut_resolves_total").inc();
            }
            relaxed.reset(n_compact);
            for e in problem.edges() {
                relaxed.add_edge(e.src, e.dst, 0.0, e.upper);
            }
            match relaxed.solve_with(s, t, telemetry) {
                Ok(relaxed_sol) => {
                    stats.augmenting_paths += relaxed_sol.augmenting_paths;
                    *sol = relaxed_sol;
                }
                Err(_) => return CutOutcome::AtMinimumTime,
            }
        }
        Err(_) => return CutOutcome::AtMinimumTime,
    }
    if problem.cut_capacity(&sol.source_side).is_infinite() {
        return CutOutcome::AtMinimumTime;
    }

    // Apply: forward cut edges speed up (at their cheapest chain member),
    // backward cut edges slow down.
    sol.forward_cut_edges_into(problem, cut_scratch);
    speed_targets.clear();
    speed_targets.extend(cut_scratch.iter().filter_map(|&idx| edge_meta[idx].0));
    if speed_targets.is_empty() {
        // The only way to "cut" was through unmodifiable edges that the
        // capacity check let through numerically; treat as converged.
        return CutOutcome::AtMinimumTime;
    }

    // Step: τ, shrunk to the smallest headroom on the cut (Phillips–
    // Dessouky repeated cuts) so no computation is pushed below t_min.
    // Overshooting a non-critical path's slack is fine here — the stretch
    // pass that follows each step reclaims it.
    let headroom = speed_targets
        .iter()
        .map(|n| planned[n.index()] - ctx.info(*n).expect("comp").t_min)
        .fold(f64::INFINITY, f64::min);
    let delta = headroom.min(tau);
    if delta <= 0.0 {
        return CutOutcome::AtMinimumTime;
    }
    let mut sped_up = Vec::new();
    let mut slowed_down = Vec::new();
    for &n in speed_targets.iter() {
        let info = ctx.info(n).expect("comp");
        planned[n.index()] = (planned[n.index()] - delta).max(info.t_min);
        sped_up.push(n);
    }
    sol.backward_cut_edges_into(problem, cut_scratch);
    backup.clear();
    backup.extend(
        cut_scratch
            .iter()
            .filter_map(|&idx| edge_meta[idx].1)
            .map(|n| (n, planned[n.index()])),
    );
    for &(n, t_old) in backup.iter() {
        let info = ctx.info(n).expect("comp");
        planned[n.index()] = (t_old + delta).min(info.t_max);
        slowed_down.push(n);
    }

    // Defensive re-check: the theory says the makespan shrinks by δ; if a
    // numerically marginal slowdown ever lengthened it instead, revert the
    // slowdowns (keeping the speedups, which can only help).
    let mut new_makespan =
        TimingAnalysis::compute_with_order(ec, &solver.order, dur_of(planned)).makespan;
    if new_makespan > makespan - tau * 1e-6 {
        for &(n, t_old) in backup.iter() {
            planned[n.index()] = t_old;
        }
        slowed_down.clear();
        new_makespan =
            TimingAnalysis::compute_with_order(ec, &solver.order, dur_of(planned)).makespan;
    }
    CutOutcome::Reduced {
        new_makespan,
        sped_up,
        slowed_down,
    }
}

/// Duration closure over the current planned durations.
fn dur_of(planned: &[f64]) -> impl FnMut(perseus_dag::EdgeId, &EcEdge) -> f64 + '_ {
    move |_, e: &EcEdge| match e {
        EcEdge::Comp(n) => planned[n.index()],
        EcEdge::Fixed(t) => *t,
        EcEdge::Dep => 0.0,
    }
}
