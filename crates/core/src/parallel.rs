//! Scoped fan-out over the crossbeam channel substrate.
//!
//! [`parallel_map`] is the execution model behind parallel frontier
//! construction ([`crate::FrontierSolver::characterize_all`]): a scoped
//! worker pool pulls item indices from a shared crossbeam channel and
//! sends index-tagged results back, so independent per-pipeline solves
//! run concurrently while results land in input order. Scoped threads
//! mean no `'static` bounds — borrowed [`crate::PlanContext`]s flow
//! straight into the workers — and a panicking worker propagates its
//! panic to the caller when the scope joins.

/// Applies `f` to every item on a scoped worker pool and returns the
/// results in input order.
///
/// Work is distributed dynamically (a shared index channel), so uneven
/// per-item cost — short and long pipeline sweeps mixed — balances
/// automatically. With zero or one item, or on a single-core host, `f`
/// runs inline on the caller's thread.
///
/// # Panics
///
/// Re-raises the first panic from `f` after the scope joins.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let (task_tx, task_rx) = crossbeam::channel::unbounded::<usize>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, R)>();
    for i in 0..n {
        task_tx.send(i).expect("receiver alive until scope end");
    }
    // Closing the task channel is what terminates the workers' recv loops.
    drop(task_tx);

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok(i) = task_rx.recv() {
                    // A send can only fail if the collector bailed out
                    // (a sibling panicked); stop producing and let the
                    // scope surface that panic.
                    if done_tx.send((i, f(&items[i]))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);
        drop(task_rx);
        // Drains until every worker has dropped its sender — i.e. all
        // tasks are finished or a worker died.
        while let Ok((i, r)) = done_rx.recv() {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope joined cleanly, so every index was delivered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parallel_map;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn borrows_caller_state() {
        let base = vec![10u64, 20, 30];
        let items = [0usize, 1, 2];
        let out = parallel_map(&items, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
