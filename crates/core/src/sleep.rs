//! Joint dynamic + static energy planning: the Kareus sleep-insertion
//! pass.
//!
//! Perseus shapes *dynamic* energy only — frequency planning cannot touch
//! the `P_blocking` watts a GPU burns while it sits in a pipeline bubble.
//! Kareus (the Chung/Chowdhury follow-up to the source paper) closes the
//! gap by *jointly* choosing frequencies and sleep intervals: starting
//! from the Perseus time–energy frontier, every bubble long enough to
//! amortize a [`PowerState`](perseus_gpu::PowerState)'s entry/exit latency
//! is filled with the most profitable sleep state.
//!
//! The decomposition keeps Perseus' key property: a [`SleepPlan`] is
//! derived from a frontier point's *schedule*, never from the straggler
//! deadline `T'`, so the joint plan stays `T'`-independent and cacheable.
//! The GPU never sleeps during the gradient-sync wait — that time is
//! extrinsic bloat owned by the straggler, and sleeping there would couple
//! the plan to `T'`.
//!
//! Bubbles are measured against the same *slack-filled* timeline the bloat
//! ledger attributes against ([`attribute_schedule`]): each instruction is
//! assumed to stretch to the slowest profiled point that still fits its
//! schedule gap. This guarantees the inserted windows never overlap work
//! the slack-filling alternative would do, so the ledger's `Idle` lane can
//! fund every window exactly and the 1e-9 conservation identity survives.
//!
//! [`attribute_schedule`]: crate::ledger::attribute_schedule

use perseus_dag::NodeId;
use perseus_gpu::PowerStateModel;
use perseus_pipeline::{node_schedule_gaps, node_start_times, PipeNode};

use crate::context::{CoreError, PlanContext};
use crate::frontier::{characterize, EnergySchedule, FrontierOptions};
use crate::planner::{PlanOutput, Planner, PlannerCapabilities};

/// One sleep interval on one stage's timeline: the GPU enters the state at
/// `start_s`, is fully awake again by `end_s`.
///
/// The entry and exit transitions are drawn at `P_blocking` (clocks are
/// ramping, nothing useful runs); only the parked middle draws the state's
/// residual power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepWindow {
    /// When the stage enters the sleep state, seconds from iteration
    /// start.
    pub start_s: f64,
    /// When the stage is awake again, seconds from iteration start.
    pub end_s: f64,
    /// Residual draw while parked, watts.
    pub state_power_w: f64,
    /// Entry latency, seconds.
    pub entry_s: f64,
    /// Exit latency, seconds.
    pub exit_s: f64,
}

impl SleepWindow {
    /// Total wall-clock span of the window.
    pub fn span_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Time actually parked in the state (span minus transitions).
    pub fn parked_s(&self) -> f64 {
        (self.span_s() - self.entry_s - self.exit_s).max(0.0)
    }

    /// Joules the window actually draws: blocking power during the
    /// transitions, residual state power while parked.
    pub fn actual_j(&self, p_blocking_w: f64) -> f64 {
        p_blocking_w * (self.span_s() - self.parked_s()) + self.state_power_w * self.parked_s()
    }

    /// Joules saved versus idling at `p_blocking_w` for the whole span.
    pub fn saved_j(&self, p_blocking_w: f64) -> f64 {
        p_blocking_w * self.span_s() - self.actual_j(p_blocking_w)
    }
}

/// The per-stage sleep schedule attached to one frontier point.
///
/// Windows are sorted by start time within each stage and never overlap
/// the slack-filled occupancy of that stage's instructions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SleepPlan {
    /// Sleep windows per physical stage (length = `n_stages`).
    pub per_stage: Vec<Vec<SleepWindow>>,
}

impl SleepPlan {
    /// An empty plan for `n_stages` stages: the GPU never sleeps.
    pub fn empty(n_stages: usize) -> SleepPlan {
        SleepPlan {
            per_stage: vec![Vec::new(); n_stages],
        }
    }

    /// The windows of one stage; empty for out-of-range stages.
    pub fn stage_windows(&self, stage: usize) -> &[SleepWindow] {
        self.per_stage.get(stage).map_or(&[], |w| w.as_slice())
    }

    /// Total number of sleep windows across all stages.
    pub fn window_count(&self) -> usize {
        self.per_stage.iter().map(Vec::len).sum()
    }

    /// True when no stage ever sleeps — the joint plan degenerates to the
    /// frequency-only plan it started from.
    pub fn is_empty(&self) -> bool {
        self.per_stage.iter().all(Vec::is_empty)
    }

    /// Total joules the plan saves versus idling at `p_blocking_w`.
    pub fn saved_j(&self, p_blocking_w: f64) -> f64 {
        self.per_stage
            .iter()
            .flatten()
            .map(|w| w.saved_j(p_blocking_w))
            .sum()
    }
}

/// Greedily inserts sleep windows into the bubbles of a realized
/// `schedule` (the Kareus joint-planning pass).
///
/// Each stage's timeline is reconstructed with the slack-filled
/// instruction durations the bloat ledger uses; every gap between
/// consecutive occupancies (including the ramp-up before a stage's first
/// instruction and the drain after its last) is a candidate bubble. The
/// most profitable power state is chosen per bubble via
/// [`PowerStateModel::best_for`]; bubbles too short to amortize any
/// state's entry/exit latency are left idle.
///
/// The result depends only on the schedule, the profiles, and the power
/// model — never on `T'` — so it can be computed once per frontier point
/// and cached alongside it.
pub fn insert_sleep(
    ctx: &PlanContext<'_>,
    schedule: &EnergySchedule,
    model: &PowerStateModel,
) -> SleepPlan {
    let n_stages = ctx.pipe.n_stages;
    let mut plan = SleepPlan::empty(n_stages);
    if model.is_empty() {
        return plan;
    }
    let dag = &ctx.pipe.dag;
    let dur = |id: NodeId, _: &_| schedule.realized_dur[id.index()];
    let (starts, makespan) = node_start_times(dag, dur);
    let (gaps, _) = node_schedule_gaps(dag, dur);
    let p_blocking = ctx.gpu.blocking_w;

    // Slack-filled occupancy per stage: (start, filled duration) of every
    // instruction, with the same fill rule attribute_schedule prices.
    let mut occupancy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_stages];
    for id in dag.node_ids() {
        match dag.node(id) {
            PipeNode::Comp(c) => {
                let d = schedule.realized_dur[id.index()];
                let info = ctx.info(id).expect("comp node has plan info");
                let profile = ctx.profile_of(id).expect("comp node has profile");
                let deadline = gaps[id.index()].max(d).min(info.t_max.max(d));
                let fill_t = match profile.slowest_within(deadline) {
                    Ok(entry) if entry.time_s >= d => entry.time_s,
                    _ => d,
                };
                occupancy[c.stage].push((starts[id.index()], fill_t));
            }
            PipeNode::Fixed { stage, .. } => {
                occupancy[*stage].push((starts[id.index()], schedule.realized_dur[id.index()]));
            }
            _ => {}
        }
    }

    for (stage, nodes) in occupancy.iter_mut().enumerate() {
        nodes.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite start times"));
        let mut cursor = 0.0f64;
        let mut bubbles: Vec<(f64, f64)> = Vec::new();
        for &(start, fill) in nodes.iter() {
            if start > cursor {
                bubbles.push((cursor, start));
            }
            // fill never crosses the next same-stage start (it is bounded
            // by the node's schedule gap), so the cursor stays monotone.
            cursor = cursor.max(start + fill);
        }
        if makespan > cursor {
            bubbles.push((cursor, makespan));
        }
        for (from, to) in bubbles {
            if let Some((state, _saved)) = model.best_for(to - from, p_blocking) {
                plan.per_stage[stage].push(SleepWindow {
                    start_s: from,
                    end_s: to,
                    state_power_w: state.power_w,
                    entry_s: state.entry_s,
                    exit_s: state.exit_s,
                });
            }
        }
    }
    plan
}

/// Kareus as a [`Planner`]: the Perseus frontier with a sleep plan grafted
/// onto every point.
///
/// Selection semantics are identical to Perseus — straggler lookup on the
/// frontier — but each selected point carries the sleep schedule that
/// reclaims its bubbles' static energy. With an empty power-state model,
/// or one whose every transition outlasts every bubble, the output
/// degenerates to the Perseus frontier with empty sleep plans.
#[derive(Debug, Clone)]
pub struct KareusPlanner {
    /// Frontier characterization options (shared with Perseus).
    pub opts: FrontierOptions,
    /// The idle-state menu to draw sleep windows from.
    pub power: PowerStateModel,
}

impl KareusPlanner {
    /// A Kareus planner over the given frontier options and power states.
    pub fn new(opts: FrontierOptions, power: PowerStateModel) -> KareusPlanner {
        KareusPlanner { opts, power }
    }
}

impl Planner for KareusPlanner {
    fn name(&self) -> &'static str {
        "kareus"
    }

    fn capabilities(&self) -> PlannerCapabilities {
        PlannerCapabilities {
            emits_sleep_plan: true,
        }
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        self.power
            .validate(ctx.gpu)
            .map_err(CoreError::PowerState)?;
        let frontier = characterize(ctx, &self.opts)?;
        let sleep = frontier
            .points()
            .iter()
            .map(|p| insert_sleep(ctx, &p.schedule, &self.power))
            .collect();
        Ok(PlanOutput::SleepFrontier {
            frontier,
            power: self.power.clone(),
            sleep,
        })
    }
}
