//! Energy-bloat attribution (§2's taxonomy made measurable).
//!
//! Eq. 3 prices an iteration as one scalar; this module explains it.
//! Every joule of a realized [`EnergySchedule`] is attributed to exactly
//! one of three buckets:
//!
//! * **useful** — what the iteration would have cost had every
//!   instruction run at the frequency that exactly fills its schedule
//!   gap (the slack-filling alternative), plus fixed-time operations and
//!   the pipeline bubble not even a perfect schedule can reclaim;
//! * **intrinsic bloat** — the excess of the actual instruction over its
//!   slack-filling alternative *inside one pipeline*: energy burned
//!   running faster than the schedule needed, plus the blocking power
//!   drawn over the slack the faster run left behind;
//! * **extrinsic bloat** — the blocking energy of all `N` stage GPUs
//!   while the pipeline waits for the straggler (`T' − T`).
//!
//! The decomposition is conservative by construction:
//! `useful + intrinsic + extrinsic == total` (Eq. 3) to floating-point
//! accuracy — each component is computed independently, never as a
//! residual, and a proptest pins the identity down across random
//! schedules, frequency plans, caps, and chaos seeds.

use perseus_pipeline::{node_schedule_gaps, CompKind, PipeNode};

use crate::context::PlanContext;
use crate::frontier::EnergySchedule;
use crate::sleep::SleepPlan;

/// Joules split into the paper's three destinies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy the work itself needed (slack-filling frequencies, fixed
    /// ops, irreducible pipeline bubble).
    pub useful_j: f64,
    /// Intrinsic bloat: actual-vs-slack-filling excess inside one
    /// pipeline.
    pub intrinsic_j: f64,
    /// Extrinsic bloat: blocking energy of the gradient-sync wait to
    /// `T_opt`.
    pub extrinsic_j: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules — equals Eq. 3's total for the same schedule.
    pub fn total_j(&self) -> f64 {
        self.useful_j + self.intrinsic_j + self.extrinsic_j
    }

    /// Bloat (intrinsic + extrinsic) as a fraction of the total, in
    /// `[0, 1]`; zero for an empty breakdown.
    pub fn bloat_share(&self) -> f64 {
        let total = self.total_j();
        if total > 0.0 {
            (self.intrinsic_j + self.extrinsic_j) / total
        } else {
            0.0
        }
    }

    /// Extrinsic bloat as a fraction of all bloat, in `[0, 1]`; zero when
    /// there is no bloat at all.
    pub fn extrinsic_share_of_bloat(&self) -> f64 {
        let bloat = self.intrinsic_j + self.extrinsic_j;
        if bloat > 0.0 {
            self.extrinsic_j / bloat
        } else {
            0.0
        }
    }

    /// Adds `other` into this breakdown, component-wise.
    pub fn accumulate(&mut self, other: EnergyBreakdown) {
        self.useful_j += other.useful_j;
        self.intrinsic_j += other.intrinsic_j;
        self.extrinsic_j += other.extrinsic_j;
    }

    /// This breakdown scaled by `factor` (replica/tensor-parallel
    /// multipliers).
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            useful_j: self.useful_j * factor,
            intrinsic_j: self.intrinsic_j * factor,
            extrinsic_j: self.extrinsic_j * factor,
        }
    }
}

/// What an attributed joule was spent *on* — the per-instruction-kind
/// axis of the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyKind {
    /// Forward-pass computations.
    Forward,
    /// Backward-pass computations.
    Backward,
    /// Activation recomputations.
    Recompute,
    /// Fixed-time operations (data loading, P2P).
    Fixed,
    /// In-pipeline blocking the slack-filling schedule cannot reclaim
    /// (the bubble), at `P_blocking`.
    Idle,
    /// Blocking while every stage waits for the straggler's gradient
    /// sync.
    SyncWait,
    /// Bubble time spent parked in a GPU sleep state (transition drawn at
    /// `P_blocking`, residual draw while parked) — the static-energy lane
    /// a joint planner reclaims from `Idle`.
    StaticSleep,
}

impl EnergyKind {
    /// Every kind, in ledger column order.
    pub const ALL: [EnergyKind; 7] = [
        EnergyKind::Forward,
        EnergyKind::Backward,
        EnergyKind::Recompute,
        EnergyKind::Fixed,
        EnergyKind::Idle,
        EnergyKind::SyncWait,
        EnergyKind::StaticSleep,
    ];

    /// Dense index into a per-kind array (the order of
    /// [`EnergyKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            EnergyKind::Forward => 0,
            EnergyKind::Backward => 1,
            EnergyKind::Recompute => 2,
            EnergyKind::Fixed => 3,
            EnergyKind::Idle => 4,
            EnergyKind::SyncWait => 5,
            EnergyKind::StaticSleep => 6,
        }
    }

    /// Stable display label (used by reports and the flight-recorder
    /// dump).
    pub fn label(self) -> &'static str {
        match self {
            EnergyKind::Forward => "forward",
            EnergyKind::Backward => "backward",
            EnergyKind::Recompute => "recompute",
            EnergyKind::Fixed => "fixed",
            EnergyKind::Idle => "idle",
            EnergyKind::SyncWait => "sync_wait",
            EnergyKind::StaticSleep => "static_sleep",
        }
    }

    fn of_comp(kind: CompKind) -> EnergyKind {
        match kind {
            CompKind::Forward => EnergyKind::Forward,
            CompKind::Backward => EnergyKind::Backward,
            CompKind::Recompute => EnergyKind::Recompute,
        }
    }
}

/// The full attribution of one pipeline iteration: the Eq. 3 total split
/// three ways, along the per-stage and per-instruction-kind axes.
///
/// Every aggregation sums back to `total`:
/// `Σ per_stage == Σ per_kind == total`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAttribution {
    /// The pipeline's own makespan `T`, seconds.
    pub iter_time_s: f64,
    /// End of the iteration including the straggler wait: `max(T, T')`.
    pub sync_time_s: f64,
    /// Whole-iteration breakdown.
    pub total: EnergyBreakdown,
    /// Breakdown per physical stage (length = `n_stages`).
    pub per_stage: Vec<EnergyBreakdown>,
    /// Breakdown per [`EnergyKind`], indexed by [`EnergyKind::index`].
    pub per_kind: [EnergyBreakdown; 7],
}

impl ScheduleAttribution {
    /// The breakdown of one kind.
    pub fn kind(&self, kind: EnergyKind) -> EnergyBreakdown {
        self.per_kind[kind.index()]
    }
}

/// Attributes every joule of a realized `schedule` (Eq. 3 at straggler
/// time `t_prime`) to useful work, intrinsic bloat, or extrinsic bloat.
///
/// The slack-filling alternative of each computation is priced with the
/// same §4.3 conversion the planner deploys: the slowest measured
/// frequency whose latency fits the instruction's schedule gap (bounded
/// by the profile's min-energy duration — slowing past `t_max` would
/// *increase* energy and is never "useful"). Fixed-time operations are
/// useful in full; the bubble left after slack-filling is useful
/// blocking; everything the actual instruction burned beyond its
/// alternative is intrinsic bloat; the `T' − T` wait is extrinsic.
///
/// Pure observation: nothing here feeds back into planning, and the
/// returned components sum to `schedule.energy_report(ctx, t_prime)
/// .total_j()` exactly (modulo float rounding).
pub fn attribute_schedule(
    ctx: &PlanContext<'_>,
    schedule: &EnergySchedule,
    t_prime: Option<f64>,
) -> ScheduleAttribution {
    attribute_schedule_with_sleep(ctx, schedule, t_prime, None)
}

/// [`attribute_schedule`] with an optional per-stage sleep plan overlaid.
///
/// Sleep windows carve energy out of the `Idle` lane: a window's span is
/// priced at the sleep state's actual draw (blocking power during the
/// entry/exit transitions, the residual state power while parked) and
/// booked under [`EnergyKind::StaticSleep`] as useful energy — a GPU asleep
/// in a bubble is doing exactly what the joint plan asked of it. The
/// remaining bubble stays in `Idle` at `P_blocking`. Windows are computed
/// by the planner against the same slack-filled timeline used here, so the
/// per-stage window spans never exceed the idle pool and conservation
/// stays exact: the attribution total drops by precisely the plan's
/// [`SleepPlan::saved_j`].
pub fn attribute_schedule_with_sleep(
    ctx: &PlanContext<'_>,
    schedule: &EnergySchedule,
    t_prime: Option<f64>,
    sleep: Option<&SleepPlan>,
) -> ScheduleAttribution {
    let dag = &ctx.pipe.dag;
    let (gaps, makespan) = node_schedule_gaps(dag, |id, _| schedule.realized_dur[id.index()]);
    let sync = t_prime.map_or(makespan, |t| t.max(makespan));
    let p_blocking = ctx.gpu.blocking_w;
    let n_stages = ctx.pipe.n_stages;

    let mut per_stage = vec![EnergyBreakdown::default(); n_stages];
    let mut per_kind = [EnergyBreakdown::default(); 7];
    // Per-stage occupancy of the slack-filling schedule: realized busy
    // time plus the slack each alternative additionally fills. Stages
    // execute serially and gaps never cross the next same-stage start, so
    // this stays within the makespan.
    let mut busy_fill = vec![0.0f64; n_stages];

    for id in dag.node_ids() {
        match dag.node(id) {
            PipeNode::Comp(c) => {
                let d = schedule.realized_dur[id.index()];
                let e = schedule.realized_energy[id.index()];
                let info = ctx.info(id).expect("comp node has plan info");
                let profile = ctx.profile_of(id).expect("comp node has profile");
                // Fill the gap, but never slow past the min-energy point.
                let deadline = gaps[id.index()].max(d).min(info.t_max.max(d));
                let (fill_t, fill_e) = match profile.slowest_within(deadline) {
                    // Under a frequency cap the realized point can already
                    // be slower than the slack-filling pick; then the
                    // instruction carries no intrinsic bloat.
                    Ok(entry) if entry.time_s >= d => (entry.time_s, entry.energy_j),
                    _ => (d, e),
                };
                let useful = fill_e.min(e);
                let intrinsic = (e - useful) + p_blocking * (fill_t - d);
                busy_fill[c.stage] += fill_t;
                per_stage[c.stage].useful_j += useful;
                per_stage[c.stage].intrinsic_j += intrinsic;
                let k = EnergyKind::of_comp(c.kind).index();
                per_kind[k].useful_j += useful;
                per_kind[k].intrinsic_j += intrinsic;
            }
            PipeNode::Fixed { stage, .. } => {
                // Fixed ops have exactly one frequency choice: useful in
                // full, no alternative to compare against.
                busy_fill[*stage] += schedule.realized_dur[id.index()];
                let e = schedule.realized_energy[id.index()];
                per_stage[*stage].useful_j += e;
                per_kind[EnergyKind::Fixed.index()].useful_j += e;
            }
            _ => {}
        }
    }

    // The bubble: in-pipeline blocking that survives even slack-filling.
    // Sleep windows replace their slice of it with the state's actual
    // draw; the subtraction is left unclamped so the lane totals match
    // the sleep-aware energy report bit-for-bit.
    for (stage, fill) in busy_fill.iter().enumerate() {
        let mut idle = p_blocking * (makespan - fill).max(0.0);
        if let Some(plan) = sleep {
            for w in plan.stage_windows(stage) {
                let cost = w.actual_j(p_blocking);
                idle -= p_blocking * w.span_s();
                per_stage[stage].useful_j += cost;
                per_kind[EnergyKind::StaticSleep.index()].useful_j += cost;
            }
        }
        per_stage[stage].useful_j += idle;
        per_kind[EnergyKind::Idle.index()].useful_j += idle;
    }
    // The gradient-sync wait: all stages block until the straggler
    // finishes.
    let wait = p_blocking * (sync - makespan).max(0.0);
    for stage in per_stage.iter_mut() {
        stage.extrinsic_j += wait;
    }
    per_kind[EnergyKind::SyncWait.index()].extrinsic_j += wait * n_stages as f64;

    let mut total = EnergyBreakdown::default();
    for stage in &per_stage {
        total.accumulate(*stage);
    }
    ScheduleAttribution {
        iter_time_s: makespan,
        sync_time_s: sync,
        total,
        per_stage,
        per_kind,
    }
}

/// The accumulating ledger: [`ScheduleAttribution`]s recorded across
/// iterations and pipelines, weighted by how many GPUs each pipeline
/// replica spans (§4.4: operator-parallel replicas share one schedule).
///
/// Observe-only by contract: recording into a ledger never changes any
/// planner or emulator output — the golden-trace gates re-assert
/// table3/fig9 byte-identity with attribution enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct BloatLedger {
    n_stages: usize,
    iterations: u64,
    total: EnergyBreakdown,
    per_stage: Vec<EnergyBreakdown>,
    per_kind: [EnergyBreakdown; 7],
}

impl BloatLedger {
    /// An empty ledger for pipelines of `n_stages` physical stages.
    pub fn new(n_stages: usize) -> BloatLedger {
        BloatLedger {
            n_stages,
            iterations: 0,
            total: EnergyBreakdown::default(),
            per_stage: vec![EnergyBreakdown::default(); n_stages],
            per_kind: [EnergyBreakdown::default(); 7],
        }
    }

    /// Accumulates one pipeline attribution, scaled by `weight` (replica
    /// count × tensor-parallel degree). Does not advance the iteration
    /// counter — several pipelines of one synchronized iteration record
    /// individually, then the caller calls
    /// [`BloatLedger::note_iteration`] once.
    ///
    /// # Panics
    ///
    /// Panics if `attr` describes a different stage count than the
    /// ledger.
    pub fn record(&mut self, attr: &ScheduleAttribution, weight: f64) {
        assert_eq!(
            attr.per_stage.len(),
            self.n_stages,
            "attribution stage count does not match the ledger"
        );
        self.total.accumulate(attr.total.scaled(weight));
        for (acc, stage) in self.per_stage.iter_mut().zip(&attr.per_stage) {
            acc.accumulate(stage.scaled(weight));
        }
        for (acc, kind) in self.per_kind.iter_mut().zip(&attr.per_kind) {
            acc.accumulate(kind.scaled(weight));
        }
    }

    /// Marks one synchronized iteration as fully recorded.
    pub fn note_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Stage count the ledger was built for.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Synchronized iterations recorded so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Accumulated whole-cluster breakdown.
    pub fn total(&self) -> EnergyBreakdown {
        self.total
    }

    /// Accumulated breakdown per physical stage.
    pub fn per_stage(&self) -> &[EnergyBreakdown] {
        &self.per_stage
    }

    /// Accumulated breakdown of one kind.
    pub fn kind(&self, kind: EnergyKind) -> EnergyBreakdown {
        self.per_kind[kind.index()]
    }

    /// Mean per-iteration breakdown, or the zero breakdown before any
    /// iteration was noted.
    pub fn mean_per_iteration(&self) -> EnergyBreakdown {
        if self.iterations > 0 {
            self.total.scaled(1.0 / self.iterations as f64)
        } else {
            EnergyBreakdown::default()
        }
    }

    /// Merges another ledger of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the stage counts differ.
    pub fn merge(&mut self, other: &BloatLedger) {
        assert_eq!(other.n_stages, self.n_stages, "ledger stage counts differ");
        self.iterations += other.iterations;
        self.total.accumulate(other.total);
        for (acc, stage) in self.per_stage.iter_mut().zip(&other.per_stage) {
            acc.accumulate(*stage);
        }
        for (acc, kind) in self.per_kind.iter_mut().zip(&other.per_kind) {
            acc.accumulate(*kind);
        }
    }
}
