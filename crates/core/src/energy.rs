//! Pipeline energy accounting (paper Eq. 3).
//!
//! One pipeline's iteration energy is:
//!
//! 1. computation energy `Σ e_i(f_i)`,
//! 2. `P_blocking` × the time GPUs block between computations
//!    (`N·T − Σ t_i`),
//! 3. `P_blocking` × the time all `N` GPUs wait for the straggler
//!    (`N · (T' − T)`), plus energy of fixed-time operations.

use perseus_dag::NodeId;
use perseus_pipeline::{node_start_times, PipeNode, PipelineDag};

/// Energy breakdown of one pipeline iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEnergy {
    /// The pipeline's own makespan `T`, seconds.
    pub iter_time_s: f64,
    /// End of the iteration including straggler wait: `max(T, T')`.
    pub sync_time_s: f64,
    /// Computation energy `Σ e_i`, joules.
    pub compute_j: f64,
    /// Energy of fixed-time operations (data loading, P2P), joules.
    pub fixed_j: f64,
    /// Blocking energy within the pipeline and while waiting for the
    /// straggler, joules.
    pub blocking_j: f64,
}

impl PipelineEnergy {
    /// Total energy of the iteration, joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.fixed_j + self.blocking_j
    }

    /// Average power over the synchronized iteration, watts per pipeline.
    pub fn avg_power_w(&self) -> f64 {
        self.total_j() / self.sync_time_s
    }
}

/// Evaluates Eq. 3 for a pipeline whose node durations and energies are
/// given by `dur` / `energy` (realized or planned).
///
/// `t_prime` is the straggler's iteration time; pass `None` when there is
/// no straggler (then `sync_time = T`). Each of the `n_stages` GPUs blocks
/// whenever it is not executing one of its own nodes.
pub fn pipeline_energy(
    pipe: &PipelineDag,
    dur: impl Fn(NodeId, &PipeNode) -> f64,
    energy: impl Fn(NodeId, &PipeNode) -> f64,
    p_blocking_w: f64,
    t_prime: Option<f64>,
) -> PipelineEnergy {
    let (_, makespan) = node_start_times(&pipe.dag, &dur);
    let sync = t_prime.map_or(makespan, |t| t.max(makespan));

    let mut busy = vec![0.0f64; pipe.n_stages];
    let mut compute_j = 0.0;
    let mut fixed_j = 0.0;
    for id in pipe.dag.node_ids() {
        let node = pipe.dag.node(id);
        match node {
            PipeNode::Comp(c) => {
                busy[c.stage] += dur(id, node);
                compute_j += energy(id, node);
            }
            PipeNode::Fixed { stage, .. } => {
                busy[*stage] += dur(id, node);
                fixed_j += energy(id, node);
            }
            _ => {}
        }
    }
    let blocking_time: f64 = busy.iter().map(|b| (sync - b).max(0.0)).sum();
    PipelineEnergy {
        iter_time_s: makespan,
        sync_time_s: sync,
        compute_j,
        fixed_j,
        blocking_j: p_blocking_w * blocking_time,
    }
}
