//! [`Persist`] implementations for the frontier types — the heart of a
//! server snapshot. A serialized [`ParetoFrontier`] carries every realized
//! schedule verbatim (planned durations, assigned frequencies, realized
//! time/energy), so recovery restores the exact curve the crashed server
//! had characterized without re-running the solver.

use perseus_gpu::{FreqMHz, PowerStateModel};
use perseus_store::{ByteReader, ByteWriter, Persist, StoreError};

use crate::frontier::{EnergySchedule, FrontierOptions, FrontierPoint, ParetoFrontier};
use crate::planner::PlanOutput;
use crate::sleep::{SleepPlan, SleepWindow};

impl Persist for EnergySchedule {
    fn encode(&self, w: &mut ByteWriter) {
        self.planned.encode(w);
        self.freqs.encode(w);
        self.realized_dur.encode(w);
        self.realized_energy.encode(w);
        w.put_f64(self.time_s);
        w.put_f64(self.compute_j);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let planned = Vec::<f64>::decode(r)?;
        let freqs = Vec::<Option<FreqMHz>>::decode(r)?;
        let realized_dur = Vec::<f64>::decode(r)?;
        let realized_energy = Vec::<f64>::decode(r)?;
        let n = planned.len();
        if freqs.len() != n || realized_dur.len() != n || realized_energy.len() != n {
            return Err(StoreError::corrupt(
                "energy schedule per-node vectors disagree in length",
            ));
        }
        Ok(EnergySchedule {
            planned,
            freqs,
            realized_dur,
            realized_energy,
            time_s: r.get_f64()?,
            compute_j: r.get_f64()?,
        })
    }
}

impl Persist for FrontierPoint {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.planned_time_s);
        w.put_f64(self.planned_energy_j);
        self.schedule.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(FrontierPoint {
            planned_time_s: r.get_f64()?,
            planned_energy_j: r.get_f64()?,
            schedule: EnergySchedule::decode(r)?,
        })
    }
}

impl Persist for ParetoFrontier {
    fn encode(&self, w: &mut ByteWriter) {
        self.points().to_vec().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let points = Vec::<FrontierPoint>::decode(r)?;
        // `from_points` panics on these invariants; decode must refuse
        // malformed bytes instead of aborting the process.
        if points.is_empty() {
            return Err(StoreError::corrupt("frontier has no points"));
        }
        if !points
            .windows(2)
            .all(|p| p[0].planned_time_s < p[1].planned_time_s)
        {
            return Err(StoreError::corrupt(
                "frontier points do not ascend strictly in planned time",
            ));
        }
        Ok(ParetoFrontier::from_points(points))
    }
}

impl Persist for SleepWindow {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.start_s);
        w.put_f64(self.end_s);
        w.put_f64(self.state_power_w);
        w.put_f64(self.entry_s);
        w.put_f64(self.exit_s);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let window = SleepWindow {
            start_s: r.get_f64()?,
            end_s: r.get_f64()?,
            state_power_w: r.get_f64()?,
            entry_s: r.get_f64()?,
            exit_s: r.get_f64()?,
        };
        // `>=` written via `partial_cmp` so a NaN endpoint is rejected too.
        let ordered = matches!(
            window.end_s.partial_cmp(&window.start_s),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        );
        if !ordered {
            return Err(StoreError::corrupt("sleep window ends before it starts"));
        }
        Ok(window)
    }
}

impl Persist for SleepPlan {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.per_stage.len());
        for stage in &self.per_stage {
            stage.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let n = r.get_len(8)?;
        let mut per_stage = Vec::with_capacity(n);
        for _ in 0..n {
            per_stage.push(Vec::<SleepWindow>::decode(r)?);
        }
        Ok(SleepPlan { per_stage })
    }
}

impl Persist for PlanOutput {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            PlanOutput::Schedule(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            PlanOutput::Frontier(f) => {
                w.put_u8(1);
                f.encode(w);
            }
            PlanOutput::Sweep {
                schedules,
                no_straggler_deadline_s,
            } => {
                w.put_u8(2);
                schedules.encode(w);
                w.put_f64(*no_straggler_deadline_s);
            }
            PlanOutput::SleepFrontier {
                frontier,
                power,
                sleep,
            } => {
                w.put_u8(3);
                frontier.encode(w);
                power.encode(w);
                sleep.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(PlanOutput::Schedule(EnergySchedule::decode(r)?)),
            1 => Ok(PlanOutput::Frontier(ParetoFrontier::decode(r)?)),
            2 => {
                let schedules = Vec::<EnergySchedule>::decode(r)?;
                if schedules.is_empty() {
                    return Err(StoreError::corrupt("sweep plan has no schedules"));
                }
                Ok(PlanOutput::Sweep {
                    schedules,
                    no_straggler_deadline_s: r.get_f64()?,
                })
            }
            3 => {
                let frontier = ParetoFrontier::decode(r)?;
                let power = PowerStateModel::decode(r)?;
                let sleep = Vec::<SleepPlan>::decode(r)?;
                if sleep.len() != frontier.len() {
                    return Err(StoreError::corrupt(
                        "sleep plans do not match frontier point count",
                    ));
                }
                Ok(PlanOutput::SleepFrontier {
                    frontier,
                    power,
                    sleep,
                })
            }
            t => Err(StoreError::corrupt(format!("invalid PlanOutput tag {t}"))),
        }
    }
}

impl Persist for FrontierOptions {
    fn encode(&self, w: &mut ByteWriter) {
        self.tau_s.encode(w);
        w.put_usize(self.max_iters);
        w.put_bool(self.stretch);
        w.put_bool(self.warm_start);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(FrontierOptions {
            tau_s: Persist::decode(r)?,
            max_iters: r.get_usize()?,
            stretch: r.get_bool()?,
            warm_start: r.get_bool()?,
        })
    }
}
