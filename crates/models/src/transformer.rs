//! Analytic FLOP models for transformer-family workloads.
//!
//! FLOP formulas follow the standard accounting (2 FLOPs per MAC):
//!
//! * attention projections: `2 · (3·d_model·d_attn + d_attn·d_model)` per
//!   token = `8·d_model·d_attn`,
//! * attention scores + weighted sum: `4 · seq_kv · d_attn` per token,
//! * feed-forward: `4 · d_model · d_ff` per token,
//! * LM head: `2 · d_model · vocab` per token.
//!
//! Backward ≈ 2× forward. Kernel-efficiency factors (documented on the
//! constants below) convert raw FLOPs into "time-FLOPs"; they are the
//! calibration knobs standing in for the paper's in-vivo measurements.

use crate::layers::{LayerCost, LayerKind};

/// The LM-head GEMM (hidden × vocab) is one huge dense matmul and runs
/// closer to peak throughput than a full transformer layer, so its
/// time-FLOPs are discounted. Calibrated so GPT-3 1.3B's head weighs about
/// one transformer layer, matching the Appendix B partitions.
const LM_HEAD_EFFICIENCY: f64 = 1.7;

/// Memory-bound fraction of a transformer layer's forward latency
/// (softmax, layernorm, residual adds, kernel launches).
const LAYER_MEM_FRAC_FWD: f64 = 0.10;
/// Backward has larger activations traffic.
const LAYER_MEM_FRAC_BWD: f64 = 0.12;
/// LM head is one big GEMM: almost fully clock-bound.
const HEAD_MEM_FRAC: f64 = 0.04;

/// Structural hyperparameters of a transformer-family model.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Model (residual stream) width.
    pub d_model: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Total attention width (`heads × d_head`); differs from `d_model`
    /// in T5-3B and friends.
    pub d_attn: usize,
    /// Number of transformer layers (for enc-dec: per side).
    pub n_layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length used for training.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// Forward FLOPs per token of one self-attention + FFN layer.
    fn layer_flops_per_token(&self) -> f64 {
        let proj = 8.0 * self.d_model as f64 * self.d_attn as f64;
        let scores = 4.0 * self.seq_len as f64 * self.d_attn as f64;
        let ffn = 4.0 * self.d_model as f64 * self.d_ff as f64;
        proj + scores + ffn
    }

    /// Extra forward FLOPs per token of a cross-attention block
    /// (T5 decoder layers).
    fn cross_attn_flops_per_token(&self, src_len: usize) -> f64 {
        8.0 * self.d_model as f64 * self.d_attn as f64 + 4.0 * src_len as f64 * self.d_attn as f64
    }

    /// Forward FLOPs per token of the LM head, already discounted by the
    /// GEMM-efficiency factor.
    fn head_tflops_per_token(&self) -> f64 {
        2.0 * self.d_model as f64 * self.vocab as f64 / LM_HEAD_EFFICIENCY
    }
}

fn make_layer(name: String, kind: LayerKind, fwd_tflops: f64) -> LayerCost {
    let (fwd_mem, bwd_mem) = match kind {
        LayerKind::LmHead => (HEAD_MEM_FRAC, HEAD_MEM_FRAC),
        _ => (LAYER_MEM_FRAC_FWD, LAYER_MEM_FRAC_BWD),
    };
    let (fwd_util, bwd_util) = match kind {
        LayerKind::LmHead => (0.95, 0.97),
        _ => (0.85, 0.92),
    };
    LayerCost {
        name,
        kind,
        fwd_tflops,
        bwd_tflops: 2.0 * fwd_tflops,
        fwd_mem_frac: fwd_mem,
        bwd_mem_frac: bwd_mem,
        fwd_util,
        bwd_util,
    }
}

/// Builds the partitionable layer list of a decoder-only model
/// (GPT-3, Bloom) or encoder-only model (BERT): `n_layers` identical
/// transformer layers plus one LM head. The embedding lookup is fused into
/// the first layer (it is memory-bound and cheap).
///
/// `microbatch` is the per-pipeline microbatch size; costs are per
/// microbatch.
pub fn decoder_only_layers(
    cfg: &TransformerConfig,
    microbatch: usize,
    decoder: bool,
) -> Vec<LayerCost> {
    let tokens = (microbatch * cfg.seq_len) as f64;
    let layer_flops = cfg.layer_flops_per_token() * tokens;
    let kind = if decoder {
        LayerKind::TransformerDecoder
    } else {
        LayerKind::TransformerEncoder
    };
    let mut layers: Vec<LayerCost> = (0..cfg.n_layers)
        .map(|i| make_layer(format!("layer.{i}"), kind, layer_flops))
        .collect();
    layers.push(make_layer(
        "lm_head".into(),
        LayerKind::LmHead,
        cfg.head_tflops_per_token() * tokens,
    ));
    layers
}

/// Builds the layer list of a T5-style encoder-decoder: `n_layers`
/// encoders, then `n_layers` decoders (each with an extra cross-attention
/// block, making them heavier), then the LM head.
pub fn encoder_decoder_layers(cfg: &TransformerConfig, microbatch: usize) -> Vec<LayerCost> {
    let tokens = (microbatch * cfg.seq_len) as f64;
    let enc_flops = cfg.layer_flops_per_token() * tokens;
    let dec_flops =
        (cfg.layer_flops_per_token() + cfg.cross_attn_flops_per_token(cfg.seq_len)) * tokens;
    let mut layers: Vec<LayerCost> = (0..cfg.n_layers)
        .map(|i| {
            make_layer(
                format!("encoder.{i}"),
                LayerKind::TransformerEncoder,
                enc_flops,
            )
        })
        .collect();
    layers.extend((0..cfg.n_layers).map(|i| {
        make_layer(
            format!("decoder.{i}"),
            LayerKind::TransformerCrossDecoder,
            dec_flops,
        )
    }));
    layers.push(make_layer(
        "lm_head".into(),
        LayerKind::LmHead,
        cfg.head_tflops_per_token() * tokens,
    ));
    layers
}
