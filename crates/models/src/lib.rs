//! Large-model workload zoo and pipeline partitioning for Perseus.
//!
//! The only property of a DNN that Perseus consumes is the per-layer
//! forward/backward latency profile at each GPU frequency: stage imbalance
//! (Table 1 / Table 7 of the paper) is what creates intrinsic energy bloat.
//! This crate provides analytic layer-cost models for the paper's five
//! workloads — GPT-3, Bloom, BERT, T5, and Wide-ResNet — and the
//! *minimum-imbalance pipeline partitioning* of Appendix B.
//!
//! The imbalance mechanism is reproduced structurally, not numerically:
//! GPT-3/Bloom/BERT are stacks of identical transformer layers whose final
//! stage also carries a very large language-modeling head (vocab 50k / 251k
//! / 31k); T5 has computationally heavier decoder layers (extra cross
//! attention); Wide-ResNet has four unequal bottleneck groups.
//!
//! # Examples
//!
//! ```
//! use perseus_models::{zoo, partition::min_imbalance_partition};
//! use perseus_gpu::GpuSpec;
//!
//! let model = zoo::gpt3_xl(4); // GPT-3 1.3B, microbatch size 4
//! let gpu = GpuSpec::a100_pcie();
//! let weights = model.fwd_latency_weights(&gpu);
//! let part = min_imbalance_partition(&weights, 4).unwrap();
//! assert_eq!(part.num_stages(), 4);
//! assert!(part.imbalance_ratio(&weights) < 1.5);
//! ```

pub mod layers;
pub mod partition;
pub mod resnet;
pub mod transformer;
pub mod zoo;

mod spec;

pub use layers::{LayerCost, LayerKind};
pub use partition::{min_imbalance_partition, uniform_partition, Partition, PartitionError};
pub use spec::{ModelError, ModelSpec, StageWorkloads};

#[cfg(test)]
mod tests;
