//! Minimum-imbalance pipeline partitioning (paper Appendix B).
//!
//! Given per-layer forward latencies, find the contiguous partition into
//! `N` stages minimizing the **imbalance ratio**: longest stage latency ÷
//! shortest stage latency (1.00 = perfect balance). The paper brute-forces
//! this; we use an exact candidate-threshold dynamic program:
//!
//! For every candidate minimum stage weight `m` (a contiguous layer-range
//! sum), compute via DP the partition minimizing the maximum stage weight
//! subject to *every* stage weighing at least `m`. When `m` equals the
//! minimum stage of an optimal partition `P*`, the DP's answer has max ≤
//! max(P*) and min ≥ m, so its realized ratio equals the optimum. Taking
//! the best realized ratio over all candidates is therefore exact.

use std::fmt;
use std::ops::Range;

/// Errors from partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// More stages than layers (some stage would be empty).
    TooManyStages {
        /// Requested stage count.
        stages: usize,
        /// Available layer count.
        layers: usize,
    },
    /// Zero stages requested.
    ZeroStages,
    /// A layer weight was non-positive or non-finite.
    InvalidWeight {
        /// Index of the offending layer.
        index: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::TooManyStages { stages, layers } => {
                write!(f, "cannot split {layers} layers into {stages} stages")
            }
            PartitionError::ZeroStages => write!(f, "stage count must be positive"),
            PartitionError::InvalidWeight { index } => {
                write!(f, "layer {index} has a non-positive or non-finite weight")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A contiguous partition of `L` layers into `N` stages, stored as `N + 1`
/// boundary indices `[0, b1, ..., L]` (the paper's Appendix B notation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    boundaries: Vec<usize>,
}

impl Partition {
    /// Builds a partition from explicit boundaries. Must start at 0, be
    /// strictly increasing, and end at the layer count.
    ///
    /// # Panics
    ///
    /// Panics if the boundary list is malformed; construct via
    /// [`min_imbalance_partition`] / [`uniform_partition`] in normal use.
    pub fn from_boundaries(boundaries: Vec<usize>) -> Partition {
        assert!(boundaries.len() >= 2, "need at least one stage");
        assert_eq!(boundaries[0], 0, "partition must start at layer 0");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must increase"
        );
        Partition { boundaries }
    }

    /// The boundary indices, `num_stages() + 1` entries.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Number of layers covered.
    pub fn num_layers(&self) -> usize {
        *self.boundaries.last().expect("non-empty")
    }

    /// Layer index range of stage `s`.
    pub fn stage_range(&self, s: usize) -> Range<usize> {
        self.boundaries[s]..self.boundaries[s + 1]
    }

    /// Iterator over all stage ranges.
    pub fn stage_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_stages()).map(|s| self.stage_range(s))
    }

    /// Total weight of each stage.
    pub fn stage_weights(&self, weights: &[f64]) -> Vec<f64> {
        self.stage_ranges()
            .map(|r| weights[r].iter().sum())
            .collect()
    }

    /// Longest-stage ÷ shortest-stage weight (1.00 = perfectly balanced).
    pub fn imbalance_ratio(&self, weights: &[f64]) -> f64 {
        let sw = self.stage_weights(weights);
        let max = sw.iter().copied().fold(f64::MIN, f64::max);
        let min = sw.iter().copied().fold(f64::MAX, f64::min);
        max / min
    }
}

/// Splits layers into stages with (nearly) equal **layer counts**,
/// ignoring weights — the naive planner many frameworks default to.
///
/// # Errors
///
/// See [`PartitionError`].
pub fn uniform_partition(num_layers: usize, stages: usize) -> Result<Partition, PartitionError> {
    if stages == 0 {
        return Err(PartitionError::ZeroStages);
    }
    if stages > num_layers {
        return Err(PartitionError::TooManyStages {
            stages,
            layers: num_layers,
        });
    }
    let base = num_layers / stages;
    let extra = num_layers % stages;
    let mut boundaries = Vec::with_capacity(stages + 1);
    let mut at = 0;
    boundaries.push(0);
    for s in 0..stages {
        at += base + usize::from(s < extra);
        boundaries.push(at);
    }
    Ok(Partition { boundaries })
}

/// Exact minimum-imbalance partitioning: minimizes
/// `max(stage weight) / min(stage weight)` over all contiguous partitions
/// into `stages` stages.
///
/// Runtime is `O(C · N · L²)` where `C` is the number of candidate
/// minimum-stage sums not exceeding `total / N`; for the paper's models
/// (≤ 97 layers, ≤ 8 stages) this completes in well under a second.
///
/// # Errors
///
/// See [`PartitionError`].
pub fn min_imbalance_partition(
    weights: &[f64],
    stages: usize,
) -> Result<Partition, PartitionError> {
    if stages == 0 {
        return Err(PartitionError::ZeroStages);
    }
    let n_layers = weights.len();
    if stages > n_layers {
        return Err(PartitionError::TooManyStages {
            stages,
            layers: n_layers,
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            return Err(PartitionError::InvalidWeight { index: i });
        }
    }
    if stages == 1 {
        return Ok(Partition {
            boundaries: vec![0, n_layers],
        });
    }

    // Prefix sums for O(1) range sums.
    let mut prefix = vec![0.0f64; n_layers + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let total = prefix[n_layers];
    let range_sum = |i: usize, j: usize| prefix[j] - prefix[i];

    // Candidate minimum stage weights: every contiguous-range sum not
    // exceeding the average stage weight (the partition's minimum can never
    // exceed the average).
    let avg = total / stages as f64;
    let mut candidates: Vec<f64> = Vec::new();
    for i in 0..n_layers {
        for j in (i + 1)..=n_layers {
            let s = range_sum(i, j);
            if s <= avg + 1e-12 {
                candidates.push(s);
            } else {
                break; // weights positive: sums grow with j
            }
        }
    }
    candidates.sort_by(f64::total_cmp);
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut dp = vec![vec![f64::INFINITY; n_layers + 1]; stages + 1];
    let mut choice = vec![vec![usize::MAX; n_layers + 1]; stages + 1];

    for &m in &candidates {
        // dp[s][i]: minimal achievable max-stage-weight partitioning the
        // first i layers into s stages, each weighing >= m.
        for row in dp.iter_mut() {
            row.iter_mut().for_each(|x| *x = f64::INFINITY);
        }
        dp[0][0] = 0.0;
        for s in 1..=stages {
            for i in s..=n_layers {
                let mut best_ij = f64::INFINITY;
                let mut best_j = usize::MAX;
                // Stage covers layers j..i; iterate j downward while the
                // stage sum keeps growing (all weights positive).
                for j in (s - 1..i).rev() {
                    let w = range_sum(j, i);
                    if w + 1e-12 < m {
                        continue; // stage too light; extend further left
                    }
                    if dp[s - 1][j].is_finite() {
                        let v = dp[s - 1][j].max(w);
                        if v < best_ij {
                            best_ij = v;
                            best_j = j;
                        }
                    }
                    // Once the stage alone exceeds the best max found, no
                    // longer j can help (w only grows as j decreases).
                    if w >= best_ij {
                        break;
                    }
                }
                dp[s][i] = best_ij;
                choice[s][i] = best_j;
            }
        }
        if !dp[stages][n_layers].is_finite() {
            continue;
        }
        // Reconstruct and evaluate the realized ratio.
        let mut boundaries = vec![n_layers];
        let mut i = n_layers;
        for s in (1..=stages).rev() {
            i = choice[s][i];
            boundaries.push(i);
        }
        boundaries.reverse();
        debug_assert_eq!(boundaries[0], 0);
        let part = Partition { boundaries };
        let ratio = part.imbalance_ratio(weights);
        let better = match &best {
            None => true,
            Some((r, _)) => ratio < *r - 1e-12,
        };
        if better {
            best = Some((ratio, part.boundaries.clone()));
        }
    }

    let (_, boundaries) = best.expect("uniform partition is always feasible for some candidate");
    Ok(Partition { boundaries })
}
