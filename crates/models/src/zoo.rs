//! Preset model configurations matching the paper's workloads (§6.1,
//! Appendix B Tables 7–10).
//!
//! Each constructor takes the per-pipeline `microbatch` size, because layer
//! costs are per microbatch. Sequence lengths follow the original model
//! publications (GPT-3/Bloom: 2048, BERT/T5: 512).
//!
//! Partitionable-unit counts match Appendix B Table 7 exactly: e.g. GPT-3
//! 1.3B has 24 transformer layers + 1 LM head = 25 units (`[0, .., 25]`),
//! Bloom 176B has 70 + 1 = 71, T5-3B has 24 + 24 + 1 = 49, Wide-ResNet101
//! has stem + 33 bottlenecks + classifier = 35.

use crate::resnet::{wide_resnet_layers, WideResNetConfig};
use crate::spec::ModelSpec;
use crate::transformer::{decoder_only_layers, encoder_decoder_layers, TransformerConfig};

fn decoder_model(
    name: &str,
    params_b: f64,
    cfg: TransformerConfig,
    microbatch: usize,
    decoder: bool,
) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        params_b,
        microbatch,
        layers: decoder_only_layers(&cfg, microbatch, decoder),
    }
}

/// GPT-3 XL, 1.3B parameters: 24 layers, d_model 2048 [Brown et al.].
pub fn gpt3_xl(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 2048,
        d_ff: 8192,
        d_attn: 2048,
        n_layers: 24,
        vocab: 50257,
        seq_len: 2048,
    };
    decoder_model("gpt3-xl", 1.3, cfg, microbatch, true)
}

/// GPT-3 2.7B: 32 layers, d_model 2560.
pub fn gpt3_2_7b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 2560,
        d_ff: 10240,
        d_attn: 2560,
        n_layers: 32,
        vocab: 50257,
        seq_len: 2048,
    };
    decoder_model("gpt3-2.7b", 2.7, cfg, microbatch, true)
}

/// GPT-3 6.7B: 32 layers, d_model 4096.
pub fn gpt3_6_7b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 4096,
        d_ff: 16384,
        d_attn: 4096,
        n_layers: 32,
        vocab: 50257,
        seq_len: 2048,
    };
    decoder_model("gpt3-6.7b", 6.7, cfg, microbatch, true)
}

/// GPT-3 13B: 40 layers, d_model 5140.
pub fn gpt3_13b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 5140,
        d_ff: 20560,
        d_attn: 5140,
        n_layers: 40,
        vocab: 50257,
        seq_len: 2048,
    };
    decoder_model("gpt3-13b", 13.0, cfg, microbatch, true)
}

/// GPT-3 175B: 96 layers, d_model 12288 (large-scale emulation, §6.3).
pub fn gpt3_175b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 12288,
        d_ff: 49152,
        d_attn: 12288,
        n_layers: 96,
        vocab: 50257,
        seq_len: 2048,
    };
    decoder_model("gpt3-175b", 175.0, cfg, microbatch, true)
}

/// Bloom 3B: 30 layers, d_model 2560, vocab 250,880 — the huge multilingual
/// vocabulary makes the LM head dominate its stage (Appendix B).
pub fn bloom_3b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 2560,
        d_ff: 10240,
        d_attn: 2560,
        n_layers: 30,
        vocab: 250_880,
        seq_len: 2048,
    };
    decoder_model("bloom-3b", 3.0, cfg, microbatch, true)
}

/// Bloom 7.1B: 30 layers, d_model 4096, vocab 250,880.
pub fn bloom_7b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 4096,
        d_ff: 16384,
        d_attn: 4096,
        n_layers: 30,
        vocab: 250_880,
        seq_len: 2048,
    };
    decoder_model("bloom-7b", 7.1, cfg, microbatch, true)
}

/// Bloom 176B: 70 layers, d_model 14336, vocab 250,880 (§6.3 emulation).
pub fn bloom_176b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 14336,
        d_ff: 57344,
        d_attn: 14336,
        n_layers: 70,
        vocab: 250_880,
        seq_len: 2048,
    };
    decoder_model("bloom-176b", 176.0, cfg, microbatch, true)
}

/// BERT Base, 0.1B: 12 layers, d_model 768.
pub fn bert_base(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 768,
        d_ff: 3072,
        d_attn: 768,
        n_layers: 12,
        vocab: 30_522,
        seq_len: 512,
    };
    decoder_model("bert-base", 0.1, cfg, microbatch, false)
}

/// BERT Large, 0.3B: 24 layers, d_model 1024.
pub fn bert_large(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 1024,
        d_ff: 4096,
        d_attn: 1024,
        n_layers: 24,
        vocab: 30_522,
        seq_len: 512,
    };
    decoder_model("bert-large", 0.3, cfg, microbatch, false)
}

/// BERT Huge, 1.3B: the paper's custom variant with hidden dimension 2048
/// (Appendix B.3), 24 layers.
pub fn bert_huge(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 2048,
        d_ff: 8192,
        d_attn: 2048,
        n_layers: 24,
        vocab: 30_522,
        seq_len: 512,
    };
    decoder_model("bert-huge", 1.3, cfg, microbatch, false)
}

/// T5 Base, 0.2B: 12 encoder + 12 decoder layers, d_model 768.
pub fn t5_base(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 768,
        d_ff: 3072,
        d_attn: 768,
        n_layers: 12,
        vocab: 32_128,
        seq_len: 512,
    };
    ModelSpec {
        name: "t5-base".into(),
        params_b: 0.2,
        microbatch,
        layers: encoder_decoder_layers(&cfg, microbatch),
    }
}

/// T5 Large, 0.7B: 24 + 24 layers, d_model 1024.
pub fn t5_large(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 1024,
        d_ff: 4096,
        d_attn: 1024,
        n_layers: 24,
        vocab: 32_128,
        seq_len: 512,
    };
    ModelSpec {
        name: "t5-large".into(),
        params_b: 0.7,
        microbatch,
        layers: encoder_decoder_layers(&cfg, microbatch),
    }
}

/// T5 3B: 24 + 24 layers, d_model 1024 with the unusually wide attention
/// (d_attn 4096) and FFN (d_ff 16384) of the original checkpoint.
pub fn t5_3b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 1024,
        d_ff: 16_384,
        d_attn: 4096,
        n_layers: 24,
        vocab: 32_128,
        seq_len: 512,
    };
    ModelSpec {
        name: "t5-3b".into(),
        params_b: 3.0,
        microbatch,
        layers: encoder_decoder_layers(&cfg, microbatch),
    }
}

/// Wide-ResNet-50 with width factor 8 (0.8B parameters).
pub fn wide_resnet50_8(microbatch: usize) -> ModelSpec {
    let cfg = WideResNetConfig {
        blocks: [3, 4, 6, 3],
        width_factor: 8,
        image_size: 224,
        classes: 1000,
    };
    ModelSpec {
        name: "wide-resnet50-8".into(),
        params_b: 0.8,
        microbatch,
        layers: wide_resnet_layers(&cfg, microbatch),
    }
}

/// Wide-ResNet-101 with width factor 8 (1.5B parameters).
pub fn wide_resnet101_8(microbatch: usize) -> ModelSpec {
    let cfg = WideResNetConfig {
        blocks: [3, 4, 23, 3],
        width_factor: 8,
        image_size: 224,
        classes: 1000,
    };
    ModelSpec {
        name: "wide-resnet101-8".into(),
        params_b: 1.5,
        microbatch,
        layers: wide_resnet_layers(&cfg, microbatch),
    }
}

/// A zoo entry: `(constructor, canonical name)`.
pub type Preset = (fn(usize) -> ModelSpec, &'static str);

/// Every preset in the zoo, for sweep-style experiments.
pub fn all_presets() -> Vec<Preset> {
    vec![
        (gpt3_xl, "gpt3-xl"),
        (gpt3_2_7b, "gpt3-2.7b"),
        (gpt3_6_7b, "gpt3-6.7b"),
        (gpt3_13b, "gpt3-13b"),
        (gpt3_175b, "gpt3-175b"),
        (bloom_3b, "bloom-3b"),
        (bloom_7b, "bloom-7b"),
        (bloom_176b, "bloom-176b"),
        (bert_base, "bert-base"),
        (bert_large, "bert-large"),
        (bert_huge, "bert-huge"),
        (t5_base, "t5-base"),
        (t5_large, "t5-large"),
        (t5_3b, "t5-3b"),
        (wide_resnet50_8, "wide-resnet50-8"),
        (wide_resnet101_8, "wide-resnet101-8"),
        (llama2_7b, "llama2-7b"),
        (llama2_70b, "llama2-70b"),
        (falcon_40b, "falcon-40b"),
        (megatron_530b, "megatron-530b"),
    ]
}

/// Llama-2 7B: 32 layers, d_model 4096, SwiGLU FFN (three matrices of
/// inner width 11008 ≡ a two-matrix FFN of width 16512), 32k vocabulary,
/// 4k context.
pub fn llama2_7b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 4096,
        // SwiGLU uses three d×d_ff matrices; the two-matrix accounting in
        // `layer_flops_per_token` absorbs the extra one as d_ff × 1.5.
        d_ff: 16_512,
        d_attn: 4096,
        n_layers: 32,
        vocab: 32_000,
        seq_len: 4096,
    };
    decoder_model("llama2-7b", 6.7, cfg, microbatch, true)
}

/// Llama-2 70B: 80 layers, d_model 8192, SwiGLU width 28672 (≡ 43008).
pub fn llama2_70b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 8192,
        d_ff: 43_008,
        d_attn: 8192,
        n_layers: 80,
        vocab: 32_000,
        seq_len: 4096,
    };
    decoder_model("llama2-70b", 69.0, cfg, microbatch, true)
}

/// Falcon-40B: 60 layers, d_model 8192, 65k vocabulary.
pub fn falcon_40b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 8192,
        d_ff: 32_768,
        d_attn: 8192,
        n_layers: 60,
        vocab: 65_024,
        seq_len: 2048,
    };
    decoder_model("falcon-40b", 41.0, cfg, microbatch, true)
}

/// Megatron-Turing NLG 530B: 105 layers, d_model 20480 — the largest
/// published dense 3D-parallel training run of the paper's era.
pub fn megatron_530b(microbatch: usize) -> ModelSpec {
    let cfg = TransformerConfig {
        d_model: 20_480,
        d_ff: 81_920,
        d_attn: 20_480,
        n_layers: 105,
        vocab: 51_200,
        seq_len: 2048,
    };
    decoder_model("megatron-530b", 530.0, cfg, microbatch, true)
}
