//! GPU-independent layer cost descriptors.

use perseus_gpu::{GpuSpec, Workload};

/// Architectural role of a partitionable layer.
///
/// Pipeline partitioning operates at this granularity (Appendix B: one
/// transformer layer, or one bottleneck block for Wide-ResNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Token/position embedding lookup (memory-bound).
    Embedding,
    /// Transformer encoder layer (bidirectional self-attention + FFN).
    TransformerEncoder,
    /// Transformer decoder layer (causal self-attention + FFN).
    TransformerDecoder,
    /// Transformer decoder layer with cross-attention (T5-style).
    TransformerCrossDecoder,
    /// Language-modeling head: hidden → vocab projection. Large vocab
    /// models make the last pipeline stage heavy (Appendix B).
    LmHead,
    /// Convolution stem (Wide-ResNet 7×7 conv + pool).
    ConvStem,
    /// Bottleneck residual block; `group` selects the resolution stage 0–3.
    Bottleneck {
        /// Which of the four ResNet groups this block belongs to.
        group: u8,
    },
    /// Global pooling + classifier head.
    Classifier,
}

/// Cost of one partitionable layer for one microbatch, expressed in
/// "time-FLOPs" — raw FLOPs divided by the kernel's sustained-efficiency
/// factor, so that latency = time_flops / (GPU effective FLOP/s).
#[derive(Debug, Clone)]
pub struct LayerCost {
    /// Human-readable identifier, e.g. `"decoder.17"`.
    pub name: String,
    /// Role of the layer.
    pub kind: LayerKind,
    /// Forward time-FLOPs per microbatch.
    pub fwd_tflops: f64,
    /// Backward time-FLOPs per microbatch (≈ 2× forward).
    pub bwd_tflops: f64,
    /// Fraction of forward latency that does not scale with SM clock
    /// (memory stalls, kernel launches).
    pub fwd_mem_frac: f64,
    /// Same for backward.
    pub bwd_mem_frac: f64,
    /// Dynamic-power utilization while running forward.
    pub fwd_util: f64,
    /// Dynamic-power utilization while running backward.
    pub bwd_util: f64,
}

impl LayerCost {
    /// Forward latency at the GPU's maximum SM clock, seconds.
    pub fn fwd_latency_at_max(&self, gpu: &GpuSpec) -> f64 {
        self.fwd_tflops / (gpu.flops_per_mhz_s * gpu.max_freq_mhz as f64)
    }

    /// Backward latency at the GPU's maximum SM clock, seconds.
    pub fn bwd_latency_at_max(&self, gpu: &GpuSpec) -> f64 {
        self.bwd_tflops / (gpu.flops_per_mhz_s * gpu.max_freq_mhz as f64)
    }

    /// Converts the forward pass into a [`Workload`] on `gpu`.
    pub fn fwd_workload(&self, gpu: &GpuSpec) -> Workload {
        cost_to_workload(self.fwd_tflops, self.fwd_mem_frac, self.fwd_util, gpu)
    }

    /// Converts the backward pass into a [`Workload`] on `gpu`.
    pub fn bwd_workload(&self, gpu: &GpuSpec) -> Workload {
        cost_to_workload(self.bwd_tflops, self.bwd_mem_frac, self.bwd_util, gpu)
    }

    /// Scales the layer's compute by `k` (tensor parallelism divides work
    /// equally across GPUs, §4.4).
    pub fn scaled(&self, k: f64) -> LayerCost {
        LayerCost {
            fwd_tflops: self.fwd_tflops * k,
            bwd_tflops: self.bwd_tflops * k,
            ..self.clone()
        }
    }
}

/// Splits a total max-clock latency into clock-proportional and
/// clock-insensitive parts per the memory-bound fraction.
fn cost_to_workload(tflops: f64, mem_frac: f64, util: f64, gpu: &GpuSpec) -> Workload {
    let t_at_max = tflops / (gpu.flops_per_mhz_s * gpu.max_freq_mhz as f64);
    let mem_time = t_at_max * mem_frac;
    let compute = t_at_max * (1.0 - mem_frac) * gpu.max_freq_mhz as f64;
    Workload::new(compute, mem_time, util)
}
