//! Model specification: an ordered list of partitionable layers plus
//! helpers to turn a stage partition into per-stage GPU workloads.

use std::fmt;

use perseus_gpu::{GpuSpec, Workload};

use crate::layers::LayerCost;
use crate::partition::Partition;

/// Errors from model/partition composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The partition's layer count does not match the model.
    PartitionMismatch {
        /// Layers in the model.
        model_layers: usize,
        /// Layers covered by the partition.
        partition_layers: usize,
    },
    /// Tensor-parallel degree must be at least 1.
    InvalidTensorParallel(usize),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::PartitionMismatch {
                model_layers,
                partition_layers,
            } => write!(
                f,
                "partition covers {partition_layers} layers but the model has {model_layers}"
            ),
            ModelError::InvalidTensorParallel(d) => {
                write!(f, "invalid tensor parallel degree {d}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// The forward and backward workloads of one pipeline stage (all its
/// layers, executed back to back for one microbatch).
#[derive(Debug, Clone, Copy)]
pub struct StageWorkloads {
    /// Forward pass of the whole stage.
    pub fwd: Workload,
    /// Backward pass of the whole stage.
    pub bwd: Workload,
}

/// A trainable model described as an ordered list of partitionable layers.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"gpt3-xl"`.
    pub name: String,
    /// Approximate parameter count, in billions (for reporting only).
    pub params_b: f64,
    /// Per-pipeline microbatch size these costs were built for.
    pub microbatch: usize,
    /// Ordered partitionable layers.
    pub layers: Vec<LayerCost>,
}

impl ModelSpec {
    /// Number of partitionable layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward latency of each layer at the GPU's max clock — the weights
    /// that minimum-imbalance partitioning balances (Appendix B considers
    /// only forward latency; backward is roughly proportional).
    pub fn fwd_latency_weights(&self, gpu: &GpuSpec) -> Vec<f64> {
        self.layers
            .iter()
            .map(|l| l.fwd_latency_at_max(gpu))
            .collect()
    }

    /// Applies tensor parallelism of degree `tp`: every layer's compute is
    /// divided equally across `tp` GPUs (§4.4 — operator parallelism splits
    /// operations in equal sizes, so one GPU per stage is profiled and the
    /// schedule is replicated).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidTensorParallel`] if `tp == 0`.
    pub fn with_tensor_parallel(&self, tp: usize) -> Result<ModelSpec, ModelError> {
        if tp == 0 {
            return Err(ModelError::InvalidTensorParallel(tp));
        }
        let k = 1.0 / tp as f64;
        Ok(ModelSpec {
            name: format!("{}-tp{tp}", self.name),
            params_b: self.params_b,
            microbatch: self.microbatch,
            layers: self.layers.iter().map(|l| l.scaled(k)).collect(),
        })
    }

    /// Per-stage forward/backward workloads under `partition` on `gpu`.
    ///
    /// # Errors
    ///
    /// [`ModelError::PartitionMismatch`] if the partition does not cover
    /// exactly this model's layers.
    pub fn stage_workloads(
        &self,
        partition: &Partition,
        gpu: &GpuSpec,
    ) -> Result<Vec<StageWorkloads>, ModelError> {
        if partition.num_layers() != self.layers.len() {
            return Err(ModelError::PartitionMismatch {
                model_layers: self.layers.len(),
                partition_layers: partition.num_layers(),
            });
        }
        let mut out = Vec::with_capacity(partition.num_stages());
        for stage in partition.stage_ranges() {
            let mut fwd = Workload::new(0.0, 0.0, 0.5);
            let mut bwd = Workload::new(0.0, 0.0, 0.5);
            let mut first = true;
            for l in &self.layers[stage] {
                if first {
                    fwd = l.fwd_workload(gpu);
                    bwd = l.bwd_workload(gpu);
                    first = false;
                } else {
                    fwd = fwd.fused(&l.fwd_workload(gpu));
                    bwd = bwd.fused(&l.bwd_workload(gpu));
                }
            }
            out.push(StageWorkloads { fwd, bwd });
        }
        Ok(out)
    }
}
