use perseus_gpu::GpuSpec;

use crate::partition::{min_imbalance_partition, uniform_partition, Partition, PartitionError};
use crate::zoo;
use crate::LayerKind;

#[test]
fn partition_unit_counts_match_appendix_b() {
    // Appendix B Table 7: partition boundary lists end at these counts.
    assert_eq!(zoo::gpt3_xl(4).num_layers(), 25);
    assert_eq!(zoo::gpt3_2_7b(4).num_layers(), 33);
    assert_eq!(zoo::gpt3_6_7b(4).num_layers(), 33);
    assert_eq!(zoo::gpt3_13b(4).num_layers(), 41);
    assert_eq!(zoo::gpt3_175b(1).num_layers(), 97);
    assert_eq!(zoo::bloom_3b(4).num_layers(), 31);
    assert_eq!(zoo::bloom_7b(4).num_layers(), 31);
    assert_eq!(zoo::bloom_176b(1).num_layers(), 71);
    assert_eq!(zoo::bert_base(8).num_layers(), 13);
    assert_eq!(zoo::bert_large(8).num_layers(), 25);
    assert_eq!(zoo::bert_huge(8).num_layers(), 25);
    assert_eq!(zoo::t5_base(4).num_layers(), 25);
    assert_eq!(zoo::t5_large(4).num_layers(), 49);
    assert_eq!(zoo::t5_3b(4).num_layers(), 49);
    assert_eq!(zoo::wide_resnet50_8(32).num_layers(), 18);
    assert_eq!(zoo::wide_resnet101_8(32).num_layers(), 35);
}

#[test]
fn lm_head_is_last_layer() {
    for (ctor, name) in zoo::all_presets() {
        let m = ctor(4);
        let last = m.layers.last().unwrap();
        match last.kind {
            LayerKind::LmHead | LayerKind::Classifier => {}
            other => panic!("{name}: last layer is {other:?}"),
        }
    }
}

#[test]
fn bloom_head_heavier_than_gpt3_head() {
    // Bloom's 251k vocabulary vs GPT-3's 50k: its head must weigh several
    // transformer layers (Appendix B).
    let bloom = zoo::bloom_3b(4);
    let gpt = zoo::gpt3_2_7b(4); // same d_model
    let rel = |m: &crate::ModelSpec| {
        let head = m.layers.last().unwrap().fwd_tflops;
        head / m.layers[0].fwd_tflops
    };
    assert!(rel(&bloom) > 3.0, "bloom head/layer = {}", rel(&bloom));
    assert!(rel(&gpt) < 1.5, "gpt head/layer = {}", rel(&gpt));
}

#[test]
fn t5_decoders_heavier_than_encoders() {
    let t5 = zoo::t5_3b(4);
    let enc = &t5.layers[0];
    let dec = &t5.layers[24];
    assert!(matches!(enc.kind, LayerKind::TransformerEncoder));
    assert!(matches!(dec.kind, LayerKind::TransformerCrossDecoder));
    let ratio = dec.fwd_tflops / enc.fwd_tflops;
    assert!(ratio > 1.2 && ratio < 1.7, "dec/enc = {ratio}");
}

#[test]
fn backward_roughly_double_forward() {
    for (ctor, _) in zoo::all_presets() {
        for l in &ctor(4).layers {
            let r = l.bwd_tflops / l.fwd_tflops;
            assert!((r - 2.0).abs() < 0.01, "{}: bwd/fwd = {r}", l.name);
        }
    }
}

#[test]
fn imbalance_ratios_match_paper_trends() {
    // Table 1 / Table 7 qualitative shape:
    //  * minimum-imbalance partitioning cannot reach 1.00,
    //  * 8 stages are more imbalanced than 4,
    //  * the huge 175B model is nearly balanced,
    //  * BERT base (tiny, 13 units) is the most imbalanced.
    let gpu = GpuSpec::a100_pcie();
    let ratio = |m: &crate::ModelSpec, n: usize| {
        let w = m.fwd_latency_weights(&gpu);
        min_imbalance_partition(&w, n).unwrap().imbalance_ratio(&w)
    };
    let gpt_xl = zoo::gpt3_xl(4);
    let r4 = ratio(&gpt_xl, 4);
    let r8 = ratio(&gpt_xl, 8);
    assert!(r4 > 1.05 && r4 < 1.30, "gpt3-xl 4 stages: {r4}");
    assert!(
        r8 > r4,
        "more stages should be harder to balance: {r8} vs {r4}"
    );

    let r175 = ratio(&zoo::gpt3_175b(1), 4);
    assert!(r175 < 1.06, "gpt3-175b should be nearly balanced: {r175}");

    let bert = ratio(&zoo::bert_base(8), 8);
    assert!(
        bert > 1.5,
        "bert-base 8 stages should be badly imbalanced: {bert}"
    );

    let bloom = ratio(&zoo::bloom_3b(4), 4);
    assert!(bloom > 1.03 && bloom < 1.35, "bloom-3b: {bloom}");

    let t5 = ratio(&zoo::t5_3b(4), 4);
    assert!(t5 < 1.25, "t5-3b should balance reasonably: {t5}");
}

#[test]
fn min_imbalance_beats_uniform_for_bloom() {
    // The naive equal-layer-count split dumps the giant Bloom head on top
    // of a full stage; weight-aware partitioning must do better.
    let gpu = GpuSpec::a100_pcie();
    let m = zoo::bloom_3b(4);
    let w = m.fwd_latency_weights(&gpu);
    let uni = uniform_partition(w.len(), 4).unwrap().imbalance_ratio(&w);
    let opt = min_imbalance_partition(&w, 4).unwrap().imbalance_ratio(&w);
    assert!(opt < uni, "optimal {opt} should beat uniform {uni}");
}

#[test]
fn min_imbalance_is_optimal_on_small_instances() {
    // Brute-force all partitions for small L and N and compare.
    fn brute(weights: &[f64], stages: usize) -> f64 {
        fn rec(weights: &[f64], start: usize, left: usize, acc: &mut Vec<f64>, best: &mut f64) {
            let l = weights.len();
            if left == 1 {
                let s: f64 = weights[start..].iter().sum();
                acc.push(s);
                let max = acc.iter().copied().fold(f64::MIN, f64::max);
                let min = acc.iter().copied().fold(f64::MAX, f64::min);
                *best = best.min(max / min);
                acc.pop();
                return;
            }
            for end in start + 1..=(l - left + 1) {
                let s: f64 = weights[start..end].iter().sum();
                acc.push(s);
                rec(weights, end, left - 1, acc, best);
                acc.pop();
            }
        }
        let mut best = f64::INFINITY;
        rec(weights, 0, stages, &mut Vec::new(), &mut best);
        best
    }

    let cases: Vec<(Vec<f64>, usize)> = vec![
        (vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0], 3),
        (vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0], 3),
        (vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 4),
        (vec![5.0, 5.0, 5.0, 1.0], 2),
        (vec![2.0, 2.0, 2.0, 2.0, 7.0], 4),
    ];
    for (w, n) in cases {
        let opt = min_imbalance_partition(&w, n).unwrap().imbalance_ratio(&w);
        let want = brute(&w, n);
        assert!(
            (opt - want).abs() < 1e-9,
            "weights {w:?} stages {n}: got {opt}, brute force {want}"
        );
    }
}

#[test]
fn partition_errors() {
    assert!(matches!(
        min_imbalance_partition(&[1.0, 2.0], 3),
        Err(PartitionError::TooManyStages { .. })
    ));
    assert!(matches!(
        min_imbalance_partition(&[1.0], 0),
        Err(PartitionError::ZeroStages)
    ));
    assert!(matches!(
        min_imbalance_partition(&[1.0, -2.0], 1),
        Err(PartitionError::InvalidWeight { index: 1 })
    ));
    assert!(matches!(
        min_imbalance_partition(&[1.0, f64::NAN], 1),
        Err(PartitionError::InvalidWeight { index: 1 })
    ));
}

#[test]
fn uniform_partition_counts() {
    let p = uniform_partition(10, 4).unwrap();
    assert_eq!(p.boundaries(), &[0, 3, 6, 8, 10]);
    let p = uniform_partition(8, 4).unwrap();
    assert_eq!(p.boundaries(), &[0, 2, 4, 6, 8]);
}

#[test]
fn partition_accessors() {
    let p = Partition::from_boundaries(vec![0, 3, 5]);
    assert_eq!(p.num_stages(), 2);
    assert_eq!(p.num_layers(), 5);
    assert_eq!(p.stage_range(0), 0..3);
    assert_eq!(p.stage_range(1), 3..5);
    let w = [1.0, 1.0, 1.0, 2.0, 2.0];
    assert_eq!(p.stage_weights(&w), vec![3.0, 4.0]);
    assert!((p.imbalance_ratio(&w) - 4.0 / 3.0).abs() < 1e-12);
}

#[test]
fn stage_workloads_cover_model() {
    let gpu = GpuSpec::a100_pcie();
    let m = zoo::gpt3_xl(4);
    let w = m.fwd_latency_weights(&gpu);
    let p = min_imbalance_partition(&w, 4).unwrap();
    let stages = m.stage_workloads(&p, &gpu).unwrap();
    assert_eq!(stages.len(), 4);
    // Total forward latency at max clock is preserved by stage fusion.
    let total_layers: f64 = w.iter().sum();
    let total_stages: f64 = stages
        .iter()
        .map(|s| gpu.time(&s.fwd, gpu.max_freq()))
        .sum();
    assert!((total_layers - total_stages).abs() / total_layers < 1e-9);
    // Backward slower than forward.
    for s in &stages {
        assert!(gpu.time(&s.bwd, gpu.max_freq()) > gpu.time(&s.fwd, gpu.max_freq()));
    }
}

#[test]
fn stage_workloads_partition_mismatch() {
    let gpu = GpuSpec::a100_pcie();
    let m = zoo::gpt3_xl(4);
    let p = Partition::from_boundaries(vec![0, 5, 10]);
    assert!(matches!(
        m.stage_workloads(&p, &gpu),
        Err(crate::ModelError::PartitionMismatch { .. })
    ));
}

#[test]
fn tensor_parallel_divides_compute() {
    let m = zoo::gpt3_6_7b(4);
    let tp = m.with_tensor_parallel(4).unwrap();
    for (a, b) in m.layers.iter().zip(&tp.layers) {
        assert!((b.fwd_tflops - a.fwd_tflops / 4.0).abs() < 1e-6);
    }
    assert!(m.with_tensor_parallel(0).is_err());
}

#[test]
fn wide_resnet_groups_have_distinct_costs() {
    let m = zoo::wide_resnet101_8(32);
    // Group boundary blocks (with downsampling) differ from steady blocks,
    // and groups differ from each other — the source of WRN imbalance.
    let g0 = m.layers.iter().find(|l| l.name == "group0.block1").unwrap();
    let g3 = m.layers.iter().find(|l| l.name == "group3.block1").unwrap();
    assert!((g0.fwd_tflops - g3.fwd_tflops).abs() / g0.fwd_tflops > 0.05);
}

#[test]
fn a40_slower_than_a100() {
    let m = zoo::gpt3_xl(4);
    let a100: f64 = m.fwd_latency_weights(&GpuSpec::a100_pcie()).iter().sum();
    let a40: f64 = m.fwd_latency_weights(&GpuSpec::a40()).iter().sum();
    assert!(
        a40 > 1.5 * a100,
        "A40 should be much slower: {a40} vs {a100}"
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn partition_covers_everything(
            weights in proptest::collection::vec(0.1f64..10.0, 4..30),
            stages in 1usize..6,
        ) {
            prop_assume!(stages <= weights.len());
            let p = min_imbalance_partition(&weights, stages).unwrap();
            prop_assert_eq!(p.num_stages(), stages);
            prop_assert_eq!(p.num_layers(), weights.len());
            // Stages tile the layer range exactly.
            let mut covered = 0;
            for r in p.stage_ranges() {
                prop_assert_eq!(r.start, covered);
                covered = r.end;
                prop_assert!(r.end > r.start);
            }
            prop_assert_eq!(covered, weights.len());
        }

        #[test]
        fn optimal_no_worse_than_uniform(
            weights in proptest::collection::vec(0.1f64..10.0, 4..30),
            stages in 2usize..6,
        ) {
            prop_assume!(stages <= weights.len());
            let opt = min_imbalance_partition(&weights, stages).unwrap().imbalance_ratio(&weights);
            let uni = uniform_partition(weights.len(), stages).unwrap().imbalance_ratio(&weights);
            prop_assert!(opt <= uni + 1e-9, "optimal {} worse than uniform {}", opt, uni);
        }

        #[test]
        fn ratio_at_least_one(
            weights in proptest::collection::vec(0.1f64..10.0, 4..20),
            stages in 1usize..5,
        ) {
            prop_assume!(stages <= weights.len());
            let r = min_imbalance_partition(&weights, stages).unwrap().imbalance_ratio(&weights);
            prop_assert!(r >= 1.0 - 1e-12);
        }
    }
}

#[test]
fn extended_zoo_models_are_wellformed() {
    let gpu = GpuSpec::a100_pcie();
    for (ctor, name) in [
        (zoo::llama2_7b as fn(usize) -> crate::ModelSpec, "llama2-7b"),
        (zoo::llama2_70b, "llama2-70b"),
        (zoo::falcon_40b, "falcon-40b"),
        (zoo::megatron_530b, "megatron-530b"),
    ] {
        let m = ctor(2);
        assert!(m.num_layers() > 30, "{name}");
        let w = m.fwd_latency_weights(&gpu);
        let p = min_imbalance_partition(&w, 8).unwrap();
        let r = p.imbalance_ratio(&w);
        assert!((1.0..1.6).contains(&r), "{name}: ratio {r}");
    }
    // Larger models balance better (same trend as Table 1).
    let ratio = |m: &crate::ModelSpec| {
        let w = m.fwd_latency_weights(&gpu);
        min_imbalance_partition(&w, 8).unwrap().imbalance_ratio(&w)
    };
    assert!(ratio(&zoo::megatron_530b(2)) < ratio(&zoo::llama2_7b(2)));
}
