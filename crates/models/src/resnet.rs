//! Analytic FLOP model for Wide-ResNet (Zagoruyko & Komodakis, BMVC 2016),
//! scaled up with the width factor as in the paper's evaluation (§6.1 uses
//! width factor 8 to reach 0.8B/1.5B parameters).
//!
//! A bottleneck block is three convolutions (1×1 reduce, 3×3, 1×1 expand)
//! wrapped with a skip connection; Appendix B partitions at bottleneck
//! granularity because frameworks cannot split skip connections across
//! stages. Early groups run at large spatial resolutions with few channels
//! and are partly memory-bound, which is what keeps Wide-ResNet stages
//! imbalanced even under optimal partitioning.

use crate::layers::{LayerCost, LayerKind};

/// Structural hyperparameters of a Wide-ResNet.
#[derive(Debug, Clone, Copy)]
pub struct WideResNetConfig {
    /// Blocks per group, e.g. `[3, 4, 6, 3]` for ResNet-50 or
    /// `[3, 4, 23, 3]` for ResNet-101.
    pub blocks: [usize; 4],
    /// Widening factor applied to the bottleneck's 3×3 width.
    pub width_factor: usize,
    /// Input image side length (ImageNet: 224).
    pub image_size: usize,
    /// Number of classes in the classifier head.
    pub classes: usize,
}

/// Sustained-efficiency factor per group: early groups (large spatial,
/// few channels) achieve lower tensor-core utilization, so a FLOP there is
/// "slower" than a FLOP in group 3.
const GROUP_EFFICIENCY: [f64; 4] = [0.50, 0.66, 0.82, 0.88];
/// Memory-bound fraction of forward latency per group.
const GROUP_MEM_FRAC: [f64; 4] = [0.30, 0.22, 0.14, 0.10];

/// `2 · K² · C_in · C_out · H_out · W_out` — FLOPs of one convolution.
fn conv_flops(k: usize, c_in: usize, c_out: usize, hw: usize) -> f64 {
    2.0 * (k * k) as f64 * c_in as f64 * c_out as f64 * (hw * hw) as f64
}

fn bottleneck_flops(
    c_in: usize,
    width: usize,
    c_out: usize,
    hw_out: usize,
    downsample: bool,
) -> f64 {
    // 1x1 reduce runs at the input resolution when stride 1; with stride 2
    // torchvision puts the stride on the 3x3 conv, so the 1x1 reduce runs
    // at the input resolution (2x the output side).
    let hw_in = if downsample { hw_out * 2 } else { hw_out };
    let mut f = conv_flops(1, c_in, width, hw_in);
    f += conv_flops(3, width, width, hw_out);
    f += conv_flops(1, width, c_out, hw_out);
    if downsample || c_in != c_out {
        f += conv_flops(1, c_in, c_out, hw_out);
    }
    f
}

/// Builds the partitionable layer list of a Wide-ResNet: conv stem, all
/// bottleneck blocks, classifier head. Costs are per microbatch of
/// `microbatch` images.
pub fn wide_resnet_layers(cfg: &WideResNetConfig, microbatch: usize) -> Vec<LayerCost> {
    let mb = microbatch as f64;
    let mut layers = Vec::new();
    let hw_stem = cfg.image_size / 2; // 7x7 stride-2 stem
    let stem_flops = conv_flops(7, 3, 64, hw_stem) * mb / 0.35; // stem is memory-bound
    layers.push(LayerCost {
        name: "stem".into(),
        kind: LayerKind::ConvStem,
        fwd_tflops: stem_flops,
        bwd_tflops: 2.0 * stem_flops,
        fwd_mem_frac: 0.45,
        bwd_mem_frac: 0.45,
        fwd_util: 0.6,
        bwd_util: 0.7,
    });

    let mut c_in = 64;
    // Output spatial sides after each group for image_size 224: 56,28,14,7.
    let mut hw = cfg.image_size / 4;
    for g in 0..4 {
        let planes = 64usize << g;
        let width = planes * cfg.width_factor;
        let c_out = planes * 4;
        for b in 0..cfg.blocks[g] {
            let downsample = b == 0 && g > 0;
            let hw_out = if downsample { hw / 2 } else { hw };
            let raw = bottleneck_flops(c_in, width, c_out, hw_out, downsample) * mb;
            let tflops = raw / GROUP_EFFICIENCY[g];
            layers.push(LayerCost {
                name: format!("group{g}.block{b}"),
                kind: LayerKind::Bottleneck { group: g as u8 },
                fwd_tflops: tflops,
                bwd_tflops: 2.0 * tflops,
                fwd_mem_frac: GROUP_MEM_FRAC[g],
                bwd_mem_frac: GROUP_MEM_FRAC[g] + 0.03,
                fwd_util: 0.75,
                bwd_util: 0.85,
            });
            c_in = c_out;
            if downsample {
                hw = hw_out;
            }
        }
    }

    // Global average pool + linear classifier: tiny compute, memory-bound.
    let head_flops = 2.0 * c_in as f64 * cfg.classes as f64 * mb / 0.2;
    layers.push(LayerCost {
        name: "classifier".into(),
        kind: LayerKind::Classifier,
        fwd_tflops: head_flops,
        bwd_tflops: 2.0 * head_flops,
        fwd_mem_frac: 0.6,
        bwd_mem_frac: 0.6,
        fwd_util: 0.4,
        bwd_util: 0.5,
    });
    layers
}
