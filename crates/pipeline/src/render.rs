//! Schedule evaluation and ASCII timeline rendering (Figure 1 / Figure 10
//! style visualizations).

use perseus_dag::{Dag, NodeId};

use crate::builder::{PipeNode, PipelineDag};
use crate::schedule::CompKind;

/// Start time of every node of a node-centric DAG whose *nodes* carry
/// durations, plus the makespan.
///
/// `dur(node)` must return the execution duration of the node's payload
/// (zero for events). Returns `(starts, makespan)`.
///
/// # Panics
///
/// Panics if the graph contains a cycle (pipeline DAGs are acyclic by
/// construction).
pub fn node_start_times<N, E>(dag: &Dag<N, E>, dur: impl Fn(NodeId, &N) -> f64) -> (Vec<f64>, f64) {
    let order = dag.topo_order().expect("pipeline DAGs are acyclic");
    let mut start = vec![0.0f64; dag.node_count()];
    let mut makespan = 0.0f64;
    for &u in &order {
        let finish = start[u.index()] + dur(u, dag.node(u));
        makespan = makespan.max(finish);
        for e in dag.out_edges(u) {
            if finish > start[e.dst.index()] {
                start[e.dst.index()] = finish;
            }
        }
    }
    (start, makespan)
}

/// The schedule gap of every node at the current earliest-start schedule:
/// how long the node could run — start time held fixed — before it would
/// push a successor's start (sink-adjacent nodes are bounded by the
/// makespan). Returns `(gaps, makespan)`.
///
/// A node's gap is never smaller than its own duration: every successor
/// starts no earlier than this node finishes. The frontier's
/// stretch-into-slack pass grows durations into these gaps, and the
/// energy-attribution ledger uses the same gaps to price the
/// slack-filling alternative each instruction is compared against.
///
/// # Panics
///
/// Panics if the graph contains a cycle (pipeline DAGs are acyclic by
/// construction).
pub fn node_schedule_gaps<N, E>(
    dag: &Dag<N, E>,
    dur: impl Fn(NodeId, &N) -> f64,
) -> (Vec<f64>, f64) {
    let (starts, makespan) = node_start_times(dag, &dur);
    let mut gaps = vec![0.0f64; dag.node_count()];
    for u in dag.node_ids() {
        let mut limit = makespan;
        for e in dag.out_edges(u) {
            limit = limit.min(starts[e.dst.index()]);
        }
        gaps[u.index()] = limit - starts[u.index()];
    }
    (gaps, makespan)
}

/// Renders a Figure-1-style ASCII timeline: one row per stage, `F`/`B`/`R`
/// blocks placed proportionally to their start times and durations, `.` for
/// gaps where the GPU blocks on communication.
///
/// `width` is the number of character columns the makespan maps onto.
pub fn render_timeline(
    pipe: &PipelineDag,
    dur: impl Fn(NodeId, &PipeNode) -> f64,
    width: usize,
) -> String {
    let (starts, makespan) = node_start_times(&pipe.dag, |id, n| dur(id, n));
    if makespan <= 0.0 {
        return String::new();
    }
    let col = |t: f64| ((t / makespan) * width as f64).round() as usize;
    let mut rows = vec![vec!['.'; width + 1]; pipe.n_stages];
    for (id, c) in pipe.computations() {
        let s = starts[id.index()];
        let d = dur(id, pipe.dag.node(id));
        let (c0, c1) = (col(s), col(s + d).max(col(s) + 1));
        let ch = match c.kind {
            CompKind::Forward => char::from_digit((c.microbatch % 10) as u32, 10).unwrap_or('F'),
            CompKind::Backward => 'b',
            CompKind::Recompute => 'r',
        };
        let row = &mut rows[c.stage];
        for cell in row.iter_mut().take(c1.min(width + 1)).skip(c0) {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (s, row) in rows.iter().enumerate() {
        out.push_str(&format!("S{s} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("makespan = {makespan:.4} s\n"));
    out
}
