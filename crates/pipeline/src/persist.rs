//! [`Persist`] implementations for pipeline types: schedule metadata,
//! computation keys, and the full lowered [`PipelineDag`].
//!
//! The DAG encodes as its node payloads in insertion order plus its edge
//! list; [`Dag`] assigns dense insertion-order ids, so rebuilding by
//! re-adding nodes and edges in encoded order reproduces the exact same
//! `NodeId` assignment — the property every index-addressed artifact
//! (per-node schedules, plan info) depends on.

use perseus_dag::{Dag, NodeId};
use perseus_store::{ByteReader, ByteWriter, Persist, StoreError};

use crate::builder::{DepKind, PipeNode, PipelineDag};
use crate::schedule::{CompKind, Computation, OpKey, ScheduleKind};

impl Persist for CompKind {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            CompKind::Forward => 0,
            CompKind::Backward => 1,
            CompKind::Recompute => 2,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(CompKind::Forward),
            1 => Ok(CompKind::Backward),
            2 => Ok(CompKind::Recompute),
            t => Err(StoreError::corrupt(format!("invalid CompKind tag {t}"))),
        }
    }
}

impl Persist for OpKey {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.stage);
        w.put_usize(self.chunk);
        self.kind.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(OpKey {
            stage: r.get_usize()?,
            chunk: r.get_usize()?,
            kind: CompKind::decode(r)?,
        })
    }
}

impl Persist for Computation {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.stage);
        w.put_usize(self.microbatch);
        w.put_usize(self.chunk);
        self.kind.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(Computation {
            stage: r.get_usize()?,
            microbatch: r.get_usize()?,
            chunk: r.get_usize()?,
            kind: CompKind::decode(r)?,
        })
    }
}

impl Persist for ScheduleKind {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ScheduleKind::OneFOneB => w.put_u8(0),
            ScheduleKind::GPipe => w.put_u8(1),
            ScheduleKind::EarlyRecompute1F1B => w.put_u8(2),
            ScheduleKind::Interleaved1F1B { chunks } => {
                w.put_u8(3);
                w.put_usize(*chunks);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(ScheduleKind::OneFOneB),
            1 => Ok(ScheduleKind::GPipe),
            2 => Ok(ScheduleKind::EarlyRecompute1F1B),
            3 => Ok(ScheduleKind::Interleaved1F1B {
                chunks: r.get_usize()?,
            }),
            t => Err(StoreError::corrupt(format!("invalid ScheduleKind tag {t}"))),
        }
    }
}

impl Persist for DepKind {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            DepKind::IntraStage => 0,
            DepKind::InterStage => 1,
            DepKind::Boundary => 2,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(DepKind::IntraStage),
            1 => Ok(DepKind::InterStage),
            2 => Ok(DepKind::Boundary),
            t => Err(StoreError::corrupt(format!("invalid DepKind tag {t}"))),
        }
    }
}

impl Persist for PipeNode {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            PipeNode::Source => w.put_u8(0),
            PipeNode::Sink => w.put_u8(1),
            PipeNode::Comp(c) => {
                w.put_u8(2);
                c.encode(w);
            }
            PipeNode::Fixed {
                label,
                stage,
                time_s,
                power_w,
            } => {
                w.put_u8(3);
                w.put_str(label);
                w.put_usize(*stage);
                w.put_f64(*time_s);
                w.put_f64(*power_w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(PipeNode::Source),
            1 => Ok(PipeNode::Sink),
            2 => Ok(PipeNode::Comp(Computation::decode(r)?)),
            3 => Ok(PipeNode::Fixed {
                label: r.get_str()?,
                stage: r.get_usize()?,
                time_s: r.get_f64()?,
                power_w: r.get_f64()?,
            }),
            t => Err(StoreError::corrupt(format!("invalid PipeNode tag {t}"))),
        }
    }
}

impl Persist for PipelineDag {
    fn encode(&self, w: &mut ByteWriter) {
        self.kind.encode(w);
        w.put_usize(self.n_stages);
        w.put_usize(self.n_microbatches);
        w.put_u32(self.source.0);
        w.put_u32(self.sink.0);
        w.put_usize(self.dag.node_count());
        for id in self.dag.node_ids() {
            self.dag.node(id).encode(w);
        }
        w.put_usize(self.dag.edge_count());
        for e in self.dag.edge_refs() {
            w.put_u32(e.src.0);
            w.put_u32(e.dst.0);
            e.payload.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let kind = ScheduleKind::decode(r)?;
        let n_stages = r.get_usize()?;
        let n_microbatches = r.get_usize()?;
        let source = NodeId(r.get_u32()?);
        let sink = NodeId(r.get_u32()?);
        let n_nodes = r.get_len(1)?;
        let mut dag: Dag<PipeNode, DepKind> = Dag::with_capacity(n_nodes, 0);
        for _ in 0..n_nodes {
            dag.add_node(PipeNode::decode(r)?);
        }
        if source.index() >= n_nodes || sink.index() >= n_nodes {
            return Err(StoreError::corrupt(
                "pipeline source/sink outside node range",
            ));
        }
        let n_edges = r.get_len(9)?;
        for _ in 0..n_edges {
            let src = NodeId(r.get_u32()?);
            let dst = NodeId(r.get_u32()?);
            let dep = DepKind::decode(r)?;
            if src.index() >= n_nodes || dst.index() >= n_nodes || src == dst {
                return Err(StoreError::corrupt("pipeline edge endpoint invalid"));
            }
            dag.add_edge_unchecked(src, dst, dep);
        }
        // The encoder only ever sees builder-produced DAGs, but the bytes
        // may be hostile: reject cyclic reconstructions outright so every
        // downstream topological query stays total.
        if dag.topo_order().is_err() {
            return Err(StoreError::corrupt("pipeline edge list encodes a cycle"));
        }
        Ok(PipelineDag {
            dag,
            source,
            sink,
            kind,
            n_stages,
            n_microbatches,
        })
    }
}
