//! Chrome-trace export: render an executed schedule as a
//! `chrome://tracing` / Perfetto JSON document, one track per pipeline
//! stage — the interactive counterpart of the paper's Figure 1 timelines.

use perseus_dag::NodeId;

use crate::builder::{PipeNode, PipelineDag};
use crate::render::node_start_times;

/// Escapes the small set of characters JSON forbids in strings.
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes one iteration of `pipe` as Chrome trace events.
///
/// * `dur(node)` — execution duration in seconds (realized or planned);
/// * `annotation(node)` — optional per-event argument string (e.g. the
///   assigned SM clock), shown in the trace viewer's detail pane.
///
/// Timestamps are microseconds as the trace format expects. The output is
/// a complete JSON document loadable by `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json(
    pipe: &PipelineDag,
    dur: impl Fn(NodeId, &PipeNode) -> f64,
    annotation: impl Fn(NodeId) -> Option<String>,
) -> String {
    let (starts, _) = node_start_times(&pipe.dag, &dur);
    let mut events = Vec::new();
    for s in 0..pipe.n_stages {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{s},"args":{{"name":"stage {s}"}}}}"#
        ));
    }
    for id in pipe.dag.node_ids() {
        let node = pipe.dag.node(id);
        let (name, stage) = match node {
            PipeNode::Comp(c) => (c.to_string(), c.stage),
            PipeNode::Fixed { label, stage, .. } => (label.clone(), *stage),
            _ => continue,
        };
        let d = dur(id, node);
        if d <= 0.0 {
            continue;
        }
        let ts = starts[id.index()] * 1e6;
        let args = annotation(id)
            .map(|a| format!(r#","args":{{"detail":"{}"}}"#, esc(&a)))
            .unwrap_or_default();
        events.push(format!(
            r#"{{"name":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{stage}{args}}}"#,
            esc(&name),
            ts,
            d * 1e6,
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PipelineBuilder;
    use crate::schedule::{CompKind, ScheduleKind};

    fn dur(_: NodeId, n: &PipeNode) -> f64 {
        match n {
            PipeNode::Comp(c) => match c.kind {
                CompKind::Forward | CompKind::Recompute => 0.01,
                CompKind::Backward => 0.02,
            },
            PipeNode::Fixed { time_s, .. } => *time_s,
            _ => 0.0,
        }
    }

    #[test]
    fn trace_contains_every_computation() {
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 3)
            .build()
            .unwrap();
        let json = chrome_trace_json(&pipe, dur, |_| None);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // 2 thread-name metadata + 12 computations.
        assert_eq!(json.matches(r#""ph":"X""#).count(), 12);
        assert_eq!(json.matches(r#""ph":"M""#).count(), 2);
        assert!(json.contains(r#""name":"F0@S0""#));
        assert!(json.contains(r#""name":"B2@S1""#));
    }

    #[test]
    fn annotations_are_escaped_and_attached() {
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 1, 1)
            .build()
            .unwrap();
        let json = chrome_trace_json(&pipe, dur, |_| Some("speed \"900\"\\x".into()));
        assert!(json.contains(r#""detail":"speed \"900\"\\x""#));
    }

    #[test]
    fn fixed_ops_appear_in_trace() {
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 2)
            .with_data_loading(0.005, 40.0)
            .build()
            .unwrap();
        let json = chrome_trace_json(&pipe, dur, |_| None);
        assert!(json.contains(r#""name":"dataload.0""#));
    }

    #[test]
    fn events_sorted_consistently_with_dependencies() {
        // Extract ts of F0@S0 and F0@S1: forward flows downstream in time.
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 1)
            .build()
            .unwrap();
        let json = chrome_trace_json(&pipe, dur, |_| None);
        let ts_of = |name: &str| -> f64 {
            let i = json
                .find(&format!(r#""name":"{name}""#))
                .expect("event present");
            let rest = &json[i..];
            let j = rest.find("\"ts\":").unwrap() + 5;
            rest[j..].split(',').next().unwrap().parse().unwrap()
        };
        assert!(ts_of("F0@S1") >= ts_of("F0@S0") + 0.01 * 1e6 - 1.0);
    }
}
