//! Per-stage instruction programs for pipeline-parallel schedules.

use std::fmt;

/// What a computation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompKind {
    /// Forward pass of one microbatch through one stage.
    Forward,
    /// Backward pass (gradient computation).
    Backward,
    /// Activation recomputation preceding a backward pass (Merak-style
    /// early recomputation; same work as a forward pass).
    Recompute,
}

impl fmt::Display for CompKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompKind::Forward => write!(f, "F"),
            CompKind::Backward => write!(f, "B"),
            CompKind::Recompute => write!(f, "R"),
        }
    }
}

/// One computation instance: a (stage, microbatch, chunk, kind) tuple.
///
/// `chunk` selects the model chunk under interleaved schedules (stage `s`
/// hosts virtual stages `s, s + N, s + 2N, ...`); plain schedules use
/// chunk 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Computation {
    /// Pipeline stage index, `0..n_stages`.
    pub stage: usize,
    /// Microbatch index, `0..n_microbatches`.
    pub microbatch: usize,
    /// Model chunk hosted by this stage (interleaved schedules), else 0.
    pub chunk: usize,
    /// Forward / backward / recompute.
    pub kind: CompKind,
}

impl fmt::Display for Computation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.chunk == 0 {
            write!(f, "{}{}@S{}", self.kind, self.microbatch, self.stage)
        } else {
            write!(
                f,
                "{}{}@S{}c{}",
                self.kind, self.microbatch, self.stage, self.chunk
            )
        }
    }
}

/// Profiling key: all microbatches of a (stage, chunk, kind) triple run
/// the same code on the same data shape, so they share one time/energy
/// profile (§5 — the profiler wraps "forward" and "backward" per stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey {
    /// Pipeline stage.
    pub stage: usize,
    /// Model chunk on that stage (0 for non-interleaved schedules).
    pub chunk: usize,
    /// Forward / backward / recompute.
    pub kind: CompKind,
}

impl OpKey {
    /// Key for a non-interleaved (single-chunk) computation.
    pub fn plain(stage: usize, kind: CompKind) -> OpKey {
        OpKey {
            stage,
            chunk: 0,
            kind,
        }
    }
}

impl Computation {
    /// Profiling key of this computation.
    pub fn op_key(&self) -> OpKey {
        OpKey {
            stage: self.stage,
            chunk: self.chunk,
            kind: self.kind,
        }
    }

    /// Virtual pipeline stage under interleaving: `chunk · N + stage`.
    pub fn virtual_stage(&self, n_stages: usize) -> usize {
        self.chunk * n_stages + self.stage
    }
}

/// One instruction of a stage's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Microbatch the instruction processes.
    pub microbatch: usize,
    /// Model chunk the instruction runs (0 unless interleaved).
    pub chunk: usize,
    /// Operation kind.
    pub kind: CompKind,
}

/// Supported pipeline schedules (§4.4: anything expressible as a DAG
/// works; these are the common ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// 1F1B (PipeDream-Flush): warm up, then strictly alternate one
    /// forward with one backward, then drain.
    OneFOneB,
    /// GPipe: all forwards, then all backwards.
    GPipe,
    /// 1F1B with explicit early recomputation: each backward is preceded
    /// by a recompute instruction that only depends on the stage's own
    /// stored boundary activation, so it can start before the upstream
    /// gradient arrives.
    EarlyRecompute1F1B,
    /// Megatron-style interleaved 1F1B: the model splits into
    /// `chunks × n_stages` virtual stages; stage `s` hosts chunks
    /// `s, s + N, ...`, shrinking the pipeline bubble at the cost of more
    /// communication. Requires `n_microbatches % n_stages == 0`.
    Interleaved1F1B {
        /// Model chunks per stage (`v ≥ 1`; `v = 1` degenerates to 1F1B).
        chunks: usize,
    },
}

impl ScheduleKind {
    /// Model chunks each stage hosts under this schedule.
    pub fn chunks(&self) -> usize {
        match self {
            ScheduleKind::Interleaved1F1B { chunks } => (*chunks).max(1),
            _ => 1,
        }
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleKind::OneFOneB => write!(f, "1F1B"),
            ScheduleKind::GPipe => write!(f, "GPipe"),
            ScheduleKind::EarlyRecompute1F1B => write!(f, "early-recompute-1F1B"),
            ScheduleKind::Interleaved1F1B { chunks } => write!(f, "interleaved-1F1B(v={chunks})"),
        }
    }
}

/// Generates the instruction program of `stage` under `kind`.
///
/// Every program issues exactly one `Forward` and one `Backward` per
/// (microbatch, chunk) pair (plus one `Recompute` for the early-recompute
/// schedule), in an order that is deadlock-free with respect to the
/// inter-stage dependencies.
pub fn stage_program(
    kind: ScheduleKind,
    stage: usize,
    n_stages: usize,
    n_microbatches: usize,
) -> Vec<Instruction> {
    let m = n_microbatches;
    match kind {
        ScheduleKind::GPipe => {
            let mut prog: Vec<Instruction> = (0..m)
                .map(|mb| Instruction {
                    microbatch: mb,
                    chunk: 0,
                    kind: CompKind::Forward,
                })
                .collect();
            // Backward drains in reverse microbatch order.
            prog.extend((0..m).rev().map(|mb| Instruction {
                microbatch: mb,
                chunk: 0,
                kind: CompKind::Backward,
            }));
            prog
        }
        ScheduleKind::OneFOneB => one_f_one_b(stage, n_stages, m, false),
        ScheduleKind::EarlyRecompute1F1B => one_f_one_b(stage, n_stages, m, true),
        ScheduleKind::Interleaved1F1B { chunks } => interleaved(stage, n_stages, m, chunks.max(1)),
    }
}

fn one_f_one_b(stage: usize, n_stages: usize, m: usize, recompute: bool) -> Vec<Instruction> {
    // Standard PipeDream-Flush: stage s admits `n_stages - s - 1` warmup
    // forwards (capped at m) before strictly alternating.
    let warmup = (n_stages - stage - 1).min(m);
    let mut prog = Vec::with_capacity(2 * m + if recompute { m } else { 0 });
    for mb in 0..warmup {
        prog.push(Instruction {
            microbatch: mb,
            chunk: 0,
            kind: CompKind::Forward,
        });
    }
    for i in 0..m - warmup {
        prog.push(Instruction {
            microbatch: warmup + i,
            chunk: 0,
            kind: CompKind::Forward,
        });
        if recompute {
            prog.push(Instruction {
                microbatch: i,
                chunk: 0,
                kind: CompKind::Recompute,
            });
        }
        prog.push(Instruction {
            microbatch: i,
            chunk: 0,
            kind: CompKind::Backward,
        });
    }
    for i in m - warmup..m {
        if recompute {
            prog.push(Instruction {
                microbatch: i,
                chunk: 0,
                kind: CompKind::Recompute,
            });
        }
        prog.push(Instruction {
            microbatch: i,
            chunk: 0,
            kind: CompKind::Backward,
        });
    }
    prog
}

/// Megatron-LM's interleaved 1F1B program (`megatron/core/pipeline_
/// parallel/schedules.py`, simplified to the steady case): stage `s` warms
/// up `2·(N − s − 1) + (v − 1)·N` virtual forwards, then alternates 1F1B
/// over virtual microbatch ids, then drains.
///
/// Virtual id → (chunk, microbatch): ids advance in groups of `N·v`;
/// within a group, consecutive runs of `N` ids share a chunk
/// (forward chunks ascend, backward chunks descend).
///
/// # Panics
///
/// Panics if `m % n_stages != 0` (the Megatron requirement); the builder
/// validates this and returns an error first.
fn interleaved(stage: usize, n_stages: usize, m: usize, v: usize) -> Vec<Instruction> {
    assert!(
        m.is_multiple_of(n_stages),
        "interleaved 1F1B requires microbatches divisible by stages"
    );
    let total = m * v;
    let group = n_stages * v;
    let decode = |id: usize, forward: bool| -> (usize, usize) {
        let in_group = id % group;
        let mut chunk = in_group / n_stages;
        if !forward {
            chunk = v - 1 - chunk;
        }
        let mb = (id / group) * n_stages + in_group % n_stages;
        (chunk, mb)
    };
    let warmup = (2 * (n_stages - stage - 1) + (v - 1) * n_stages).min(total);
    let mut prog = Vec::with_capacity(2 * total);
    let mut f_id = 0usize;
    let mut b_id = 0usize;
    for _ in 0..warmup {
        let (chunk, mb) = decode(f_id, true);
        prog.push(Instruction {
            microbatch: mb,
            chunk,
            kind: CompKind::Forward,
        });
        f_id += 1;
    }
    while f_id < total {
        let (chunk, mb) = decode(f_id, true);
        prog.push(Instruction {
            microbatch: mb,
            chunk,
            kind: CompKind::Forward,
        });
        f_id += 1;
        let (chunk, mb) = decode(b_id, false);
        prog.push(Instruction {
            microbatch: mb,
            chunk,
            kind: CompKind::Backward,
        });
        b_id += 1;
    }
    while b_id < total {
        let (chunk, mb) = decode(b_id, false);
        prog.push(Instruction {
            microbatch: mb,
            chunk,
            kind: CompKind::Backward,
        });
        b_id += 1;
    }
    prog
}
