//! Activation-memory analysis of pipeline schedules.
//!
//! The paper enables activation recomputation "to allow large batch sizes
//! to fit in GPUs" (§5): the schedule choice decides how many microbatch
//! activations each stage must hold simultaneously. This module derives
//! that peak from the instruction programs — useful for choosing between
//! GPipe (peak `M` everywhere), 1F1B (peak `≈ N − s`), and interleaved
//! 1F1B (per-chunk stashes) before committing to a configuration.

use crate::schedule::{stage_program, CompKind, ScheduleKind};

/// Peak activation stash per stage, in units of "one microbatch's boundary
/// activations for one model chunk".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryProfile {
    /// Peak simultaneously-held activations, indexed by stage.
    pub peak_activations: Vec<usize>,
}

impl MemoryProfile {
    /// The worst stage's peak (memory capacity must cover it).
    pub fn max_peak(&self) -> usize {
        self.peak_activations.iter().copied().max().unwrap_or(0)
    }
}

/// Computes the activation peaks of `kind` with `n_stages` stages and
/// `n_microbatches` microbatches.
///
/// A `Forward` stores one activation unit; the matching `Backward`
/// releases it. `Recompute` is neutral: with early recomputation the
/// stage keeps only the boundary activation (already counted by its
/// forward) and rebuilds the rest transiently.
pub fn activation_memory(
    kind: ScheduleKind,
    n_stages: usize,
    n_microbatches: usize,
) -> MemoryProfile {
    let peak_activations = (0..n_stages)
        .map(|s| {
            let mut held: i64 = 0;
            let mut peak: i64 = 0;
            for ins in stage_program(kind, s, n_stages, n_microbatches) {
                match ins.kind {
                    CompKind::Forward => {
                        held += 1;
                        peak = peak.max(held);
                    }
                    CompKind::Backward => held -= 1,
                    CompKind::Recompute => {}
                }
            }
            debug_assert_eq!(held, 0, "every forward must be released by a backward");
            peak as usize
        })
        .collect();
    MemoryProfile { peak_activations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpipe_holds_all_microbatches() {
        let p = activation_memory(ScheduleKind::GPipe, 4, 8);
        assert_eq!(p.peak_activations, vec![8, 8, 8, 8]);
        assert_eq!(p.max_peak(), 8);
    }

    #[test]
    fn one_f_one_b_peak_is_pipeline_depth_bound() {
        // The memory win of 1F1B [Narayanan et al. '21]: stage s holds at
        // most min(N - s, M) activations, independent of M beyond that.
        for (n, m) in [(4usize, 8usize), (4, 16), (8, 32), (2, 1)] {
            let p = activation_memory(ScheduleKind::OneFOneB, n, m);
            for (s, &peak) in p.peak_activations.iter().enumerate() {
                assert_eq!(peak, (n - s).min(m), "N={n} M={m} stage {s}");
            }
        }
    }

    #[test]
    fn early_recompute_matches_plain_1f1b_boundaries() {
        let plain = activation_memory(ScheduleKind::OneFOneB, 4, 8);
        let er = activation_memory(ScheduleKind::EarlyRecompute1F1B, 4, 8);
        assert_eq!(
            plain, er,
            "recompute instructions must not change boundary stashes"
        );
    }

    #[test]
    fn interleaving_trades_memory_for_bubble() {
        // v chunks: stage 0 stashes more in-flight activations than plain
        // 1F1B (deeper warmup), but far fewer than GPipe.
        let n = 4;
        let m = 16;
        let plain = activation_memory(ScheduleKind::OneFOneB, n, m).max_peak();
        let inter = activation_memory(ScheduleKind::Interleaved1F1B { chunks: 2 }, n, m).max_peak();
        let gpipe = activation_memory(ScheduleKind::GPipe, n, m).max_peak();
        assert!(
            inter > plain,
            "interleaving stashes more: {inter} vs {plain}"
        );
        assert!(inter < gpipe, "but far less than GPipe: {inter} vs {gpipe}");
    }

    #[test]
    fn memory_never_negative_and_balanced() {
        // The debug_assert inside checks balance; exercise many shapes.
        for kind in [
            ScheduleKind::OneFOneB,
            ScheduleKind::GPipe,
            ScheduleKind::EarlyRecompute1F1B,
            ScheduleKind::Interleaved1F1B { chunks: 2 },
        ] {
            for (n, m) in [(2usize, 4usize), (4, 8), (8, 16)] {
                if kind.chunks() > 1 && m % n != 0 {
                    continue;
                }
                let p = activation_memory(kind, n, m);
                assert_eq!(p.peak_activations.len(), n);
                assert!(p.max_peak() >= 1);
            }
        }
    }
}
