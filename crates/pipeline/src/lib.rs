//! Pipeline-parallel schedules and computation-DAG construction.
//!
//! Perseus specifies a training job by the DAG of one iteration (§3.2):
//! nodes are forward/backward computations of each (stage, microbatch) and
//! edges are dependencies. This crate generates per-stage instruction
//! programs for the schedules named in §4.4 — 1F1B, GPipe, and early
//! recomputation 1F1B — and lowers them to a [`perseus_dag::Dag`] whose
//! longest path is the iteration time.
//!
//! Constant-time operations (§4.4): data loading and P2P communication can
//! be injected as fixed-duration nodes with a single "frequency choice",
//! which the optimizer treats as unmodifiable.
//!
//! # Examples
//!
//! ```
//! use perseus_pipeline::{PipelineBuilder, ScheduleKind};
//!
//! let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 8).build().unwrap();
//! // 4 stages × 8 microbatches × {forward, backward}:
//! assert_eq!(pipe.computations().count(), 64);
//! ```

mod builder;
mod memory;
mod persist;
mod render;
mod schedule;
mod trace;

pub use builder::{DepKind, PipeNode, PipelineBuilder, PipelineDag, ScheduleError};
pub use memory::{activation_memory, MemoryProfile};
pub use render::{node_schedule_gaps, node_start_times, render_timeline};
pub use schedule::{CompKind, Computation, Instruction, OpKey, ScheduleKind};
pub use trace::chrome_trace_json;

#[cfg(test)]
mod tests;
