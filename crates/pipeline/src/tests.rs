use std::collections::HashMap;

use perseus_dag::NodeId;

use crate::builder::{PipeNode, PipelineBuilder, ScheduleError};
use crate::render::{node_start_times, render_timeline};
use crate::schedule::{stage_program, CompKind, ScheduleKind};

const ALL_KINDS: [ScheduleKind; 3] = [
    ScheduleKind::OneFOneB,
    ScheduleKind::GPipe,
    ScheduleKind::EarlyRecompute1F1B,
];

#[test]
fn programs_emit_every_computation_once() {
    for kind in ALL_KINDS {
        for (n, m) in [(2, 2), (4, 8), (8, 3), (1, 5), (4, 1)] {
            for s in 0..n {
                let prog = stage_program(kind, s, n, m);
                let mut fwd = vec![0; m];
                let mut bwd = vec![0; m];
                let mut rec = vec![0; m];
                for i in &prog {
                    match i.kind {
                        CompKind::Forward => fwd[i.microbatch] += 1,
                        CompKind::Backward => bwd[i.microbatch] += 1,
                        CompKind::Recompute => rec[i.microbatch] += 1,
                    }
                }
                assert!(
                    fwd.iter().all(|&c| c == 1),
                    "{kind:?} stage {s}: fwd {fwd:?}"
                );
                assert!(
                    bwd.iter().all(|&c| c == 1),
                    "{kind:?} stage {s}: bwd {bwd:?}"
                );
                if kind == ScheduleKind::EarlyRecompute1F1B {
                    assert!(rec.iter().all(|&c| c == 1));
                }
            }
        }
    }
}

#[test]
fn one_f_one_b_warmup_depths() {
    // First stage of a 4-deep pipeline warms up 3 forwards; last stage 0.
    let prog = stage_program(ScheduleKind::OneFOneB, 0, 4, 8);
    let warmup: Vec<_> = prog
        .iter()
        .take_while(|i| i.kind == CompKind::Forward)
        .collect();
    assert_eq!(warmup.len(), 4); // 3 warmup + the first steady forward
    let prog = stage_program(ScheduleKind::OneFOneB, 3, 4, 8);
    assert_eq!(prog[0].kind, CompKind::Forward);
    assert_eq!(prog[1].kind, CompKind::Backward); // immediate 1F1B
}

#[test]
fn backward_before_forward_never_happens_per_microbatch() {
    for kind in ALL_KINDS {
        let prog = stage_program(kind, 1, 4, 6);
        let mut seen_fwd = [false; 6];
        for i in &prog {
            match i.kind {
                CompKind::Forward => seen_fwd[i.microbatch] = true,
                _ => assert!(seen_fwd[i.microbatch], "{kind:?}: {i:?} before its forward"),
            }
        }
    }
}

#[test]
fn dag_is_acyclic_and_complete() {
    for kind in ALL_KINDS {
        let pipe = PipelineBuilder::new(kind, 4, 6).build().unwrap();
        assert!(pipe.dag.topo_order().is_ok(), "{kind:?} produced a cycle");
        let per_mb = if kind == ScheduleKind::EarlyRecompute1F1B {
            3
        } else {
            2
        };
        assert_eq!(pipe.computation_count(), 4 * 6 * per_mb);
    }
}

#[test]
fn empty_pipeline_rejected() {
    assert_eq!(
        PipelineBuilder::new(ScheduleKind::OneFOneB, 0, 4)
            .build()
            .unwrap_err(),
        ScheduleError::EmptyPipeline
    );
    assert_eq!(
        PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 0)
            .build()
            .unwrap_err(),
        ScheduleError::EmptyPipeline
    );
}

/// Uniform durations: forward 1, backward 2, recompute 1, events 0.
fn unit_dur(_: NodeId, n: &PipeNode) -> f64 {
    match n {
        PipeNode::Comp(c) => match c.kind {
            CompKind::Forward | CompKind::Recompute => 1.0,
            CompKind::Backward => 2.0,
        },
        PipeNode::Fixed { time_s, .. } => *time_s,
        _ => 0.0,
    }
}

#[test]
fn one_f_one_b_makespan_matches_analytic_formula() {
    // With uniform stage times t_f, t_b, 1F1B's iteration time is
    // (M - 1) · (t_f + t_b) + N · (t_f + t_b)  =  (M + N - 1)(t_f + t_b)
    // (critical path: fill to last stage, M 1F1B rounds, drain).
    for (n, m) in [(2, 4), (4, 8), (4, 4), (8, 16)] {
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, n, m)
            .build()
            .unwrap();
        let (_, makespan) = node_start_times(&pipe.dag, unit_dur);
        let expected = (m + n - 1) as f64 * 3.0;
        assert!(
            (makespan - expected).abs() < 1e-9,
            "N={n} M={m}: makespan {makespan} != {expected}"
        );
    }
}

#[test]
fn gpipe_slower_or_equal_to_1f1b_in_memory_but_same_time_uniform() {
    // With uniform stages, GPipe's makespan equals 1F1B's:
    // (M + N - 1) forwards + (M + N - 1) backwards.
    let n = 4;
    let m = 8;
    let gpipe = PipelineBuilder::new(ScheduleKind::GPipe, n, m)
        .build()
        .unwrap();
    let (_, t_gpipe) = node_start_times(&gpipe.dag, unit_dur);
    let expected = (m + n - 1) as f64 * 3.0;
    assert!(
        (t_gpipe - expected).abs() < 1e-9,
        "gpipe {t_gpipe} != {expected}"
    );
}

#[test]
fn imbalanced_stages_create_gaps() {
    // Make stage 1 slower: downstream stages must block, so the makespan
    // exceeds the balanced bound.
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 8)
        .build()
        .unwrap();
    let dur = |_: NodeId, n: &PipeNode| match n {
        PipeNode::Comp(c) => {
            let scale = if c.stage == 1 { 1.5 } else { 1.0 };
            match c.kind {
                CompKind::Forward | CompKind::Recompute => scale,
                CompKind::Backward => 2.0 * scale,
            }
        }
        _ => 0.0,
    };
    let (_, t) = node_start_times(&pipe.dag, dur);
    let balanced = (8 + 4 - 1) as f64 * 3.0;
    assert!(
        t > balanced,
        "imbalance must lengthen the pipeline: {t} vs {balanced}"
    );
}

#[test]
fn early_recompute_lengthens_iteration() {
    let plain = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 8)
        .build()
        .unwrap();
    let er = PipelineBuilder::new(ScheduleKind::EarlyRecompute1F1B, 4, 8)
        .build()
        .unwrap();
    let (_, t_plain) = node_start_times(&plain.dag, unit_dur);
    let (_, t_er) = node_start_times(&er.dag, unit_dur);
    assert!(t_er > t_plain);
}

#[test]
fn data_loading_delays_start() {
    let plain = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 4)
        .build()
        .unwrap();
    let loaded = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 4)
        .with_data_loading(0.5, 40.0)
        .build()
        .unwrap();
    let (_, t0) = node_start_times(&plain.dag, unit_dur);
    let (_, t1) = node_start_times(&loaded.dag, unit_dur);
    assert!(t1 >= t0 + 0.5, "{t1} vs {t0}");
    assert!(loaded.fixed_ops().count() == 4);
}

#[test]
fn p2p_latency_inserts_hops() {
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 3, 2)
        .with_p2p_latency(0.1, 30.0)
        .build()
        .unwrap();
    // (N-1) forward hops + (N-1) backward hops per microbatch.
    assert_eq!(pipe.fixed_ops().count(), 2 * 2 * 2);
    let (_, t) = node_start_times(&pipe.dag, unit_dur);
    let plain = PipelineBuilder::new(ScheduleKind::OneFOneB, 3, 2)
        .build()
        .unwrap();
    let (_, t0) = node_start_times(&plain.dag, unit_dur);
    assert!(t > t0);
}

#[test]
fn dependencies_respected_in_start_times() {
    for kind in ALL_KINDS {
        let pipe = PipelineBuilder::new(kind, 4, 6).build().unwrap();
        let (starts, _) = node_start_times(&pipe.dag, unit_dur);
        let mut start_of: HashMap<(usize, usize, CompKind), f64> = HashMap::new();
        let mut dur_of: HashMap<(usize, usize, CompKind), f64> = HashMap::new();
        for (id, c) in pipe.computations() {
            start_of.insert((c.stage, c.microbatch, c.kind), starts[id.index()]);
            dur_of.insert(
                (c.stage, c.microbatch, c.kind),
                unit_dur(id, pipe.dag.node(id)),
            );
        }
        for mb in 0..6 {
            for s in 0..3 {
                // Forward flows down.
                let a = start_of[&(s, mb, CompKind::Forward)] + dur_of[&(s, mb, CompKind::Forward)];
                assert!(start_of[&(s + 1, mb, CompKind::Forward)] >= a - 1e-9);
                // Backward flows up.
                let b = start_of[&(s + 1, mb, CompKind::Backward)]
                    + dur_of[&(s + 1, mb, CompKind::Backward)];
                assert!(start_of[&(s, mb, CompKind::Backward)] >= b - 1e-9);
            }
        }
    }
}

#[test]
fn timeline_renders_all_stages() {
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 6)
        .build()
        .unwrap();
    let s = render_timeline(&pipe, unit_dur, 80);
    assert_eq!(s.lines().count(), 5); // 4 stage rows + makespan line
    assert!(s.contains("S0 |"));
    assert!(s.contains("S3 |"));
    assert!(s.contains("makespan"));
    assert!(s.contains('b'), "backward blocks should appear");
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dag_always_acyclic(
            n in 1usize..9,
            m in 1usize..17,
            kind_idx in 0usize..3,
        ) {
            let kind = ALL_KINDS[kind_idx];
            let pipe = PipelineBuilder::new(kind, n, m).build().unwrap();
            prop_assert!(pipe.dag.topo_order().is_ok());
        }

        #[test]
        fn makespan_lower_bound_is_busiest_stage(
            n in 1usize..6,
            m in 1usize..10,
            fscale in 0.5f64..3.0,
        ) {
            // Makespan >= any single stage's total busy time.
            let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, n, m).build().unwrap();
            let dur = |_: NodeId, node: &PipeNode| match node {
                PipeNode::Comp(c) => match c.kind {
                    CompKind::Forward | CompKind::Recompute => fscale,
                    CompKind::Backward => 2.0 * fscale,
                },
                _ => 0.0,
            };
            let (_, t) = node_start_times(&pipe.dag, dur);
            let busiest = m as f64 * 3.0 * fscale;
            prop_assert!(t >= busiest - 1e-9);
        }
    }
}

mod interleaved {
    use super::*;
    use crate::schedule::Computation;

    const V: usize = 2;

    fn kind() -> ScheduleKind {
        ScheduleKind::Interleaved1F1B { chunks: V }
    }

    #[test]
    fn emits_every_chunk_microbatch_pair_once() {
        let (n, m) = (4usize, 8usize);
        for s in 0..n {
            let prog = stage_program(kind(), s, n, m);
            let mut fwd = vec![0usize; m * V];
            let mut bwd = vec![0usize; m * V];
            for i in &prog {
                let slot = i.chunk * m + i.microbatch;
                match i.kind {
                    CompKind::Forward => fwd[slot] += 1,
                    CompKind::Backward => bwd[slot] += 1,
                    CompKind::Recompute => unreachable!("no recompute in interleaved"),
                }
            }
            assert!(fwd.iter().all(|&c| c == 1), "stage {s} fwd: {fwd:?}");
            assert!(bwd.iter().all(|&c| c == 1), "stage {s} bwd: {bwd:?}");
        }
    }

    #[test]
    fn dag_is_acyclic_and_complete() {
        let pipe = PipelineBuilder::new(kind(), 4, 8).build().unwrap();
        assert!(pipe.dag.topo_order().is_ok());
        assert_eq!(pipe.computation_count(), 4 * 8 * V * 2);
        assert_eq!(pipe.chunks(), V);
    }

    #[test]
    fn rejects_non_divisible_microbatches() {
        let err = PipelineBuilder::new(kind(), 4, 6).build().unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::MicrobatchesNotDivisible { .. }
        ));
    }

    #[test]
    fn shrinks_pipeline_bubble_versus_plain_1f1b() {
        // Interleaving's whole point: with v chunks the warmup bubble
        // shrinks ~v-fold. Compare makespans with uniform per-computation
        // durations scaled so total work per stage matches (each chunk
        // carries 1/v of the stage's layers).
        let (n, m) = (4usize, 8usize);
        let plain = PipelineBuilder::new(ScheduleKind::OneFOneB, n, m)
            .build()
            .unwrap();
        let inter = PipelineBuilder::new(kind(), n, m).build().unwrap();
        let dur_plain = |_: NodeId, node: &PipeNode| match node {
            PipeNode::Comp(c) => match c.kind {
                CompKind::Forward | CompKind::Recompute => 1.0,
                CompKind::Backward => 2.0,
            },
            _ => 0.0,
        };
        let dur_inter = |_: NodeId, node: &PipeNode| match node {
            PipeNode::Comp(c) => match c.kind {
                CompKind::Forward | CompKind::Recompute => 1.0 / V as f64,
                CompKind::Backward => 2.0 / V as f64,
            },
            _ => 0.0,
        };
        let (_, t_plain) = node_start_times(&plain.dag, dur_plain);
        let (_, t_inter) = node_start_times(&inter.dag, dur_inter);
        assert!(
            t_inter < t_plain,
            "interleaving should shrink the bubble: {t_inter} vs {t_plain}"
        );
        // Same steady-state work: the win is bounded by the bubble size.
        let steady = m as f64 * 3.0;
        assert!(t_inter >= steady, "cannot beat the busy bound");
    }

    #[test]
    fn forward_chunk_dependencies_respected() {
        let (n, m) = (2usize, 4usize);
        let pipe = PipelineBuilder::new(ScheduleKind::Interleaved1F1B { chunks: 2 }, n, m)
            .build()
            .unwrap();
        let dur = |_: NodeId, node: &PipeNode| match node {
            PipeNode::Comp(_) => 1.0,
            _ => 0.0,
        };
        let (starts, _) = node_start_times(&pipe.dag, dur);
        let mut start_of = std::collections::HashMap::new();
        for (id, c) in pipe.computations() {
            start_of.insert(*c, starts[id.index()]);
        }
        // Virtual stage order: (s0,c0) -> (s1,c0) -> (s0,c1) -> (s1,c1).
        for mb in 0..m {
            let seq = [
                Computation {
                    stage: 0,
                    microbatch: mb,
                    chunk: 0,
                    kind: CompKind::Forward,
                },
                Computation {
                    stage: 1,
                    microbatch: mb,
                    chunk: 0,
                    kind: CompKind::Forward,
                },
                Computation {
                    stage: 0,
                    microbatch: mb,
                    chunk: 1,
                    kind: CompKind::Forward,
                },
                Computation {
                    stage: 1,
                    microbatch: mb,
                    chunk: 1,
                    kind: CompKind::Forward,
                },
            ];
            for pair in seq.windows(2) {
                assert!(
                    start_of[&pair[1]] >= start_of[&pair[0]] + 1.0 - 1e-9,
                    "{} must follow {}",
                    pair[1],
                    pair[0]
                );
            }
        }
    }
}
