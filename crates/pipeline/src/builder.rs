//! Lowering a pipeline schedule to a computation DAG.

use std::fmt;

use perseus_dag::{Dag, NodeId};

use crate::schedule::{stage_program, CompKind, Computation, ScheduleKind};

/// Node payload of a pipeline computation DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum PipeNode {
    /// Virtual start-of-iteration event (zero duration).
    Source,
    /// Virtual end-of-iteration event (zero duration).
    Sink,
    /// A frequency-controllable computation.
    Comp(Computation),
    /// A constant-time operation (§4.4): data loading, P2P transfer over a
    /// slow link, etc. Takes `time_s` regardless of GPU frequency and draws
    /// `power_w` while running. The optimizer treats it as a node with a
    /// single frequency choice.
    Fixed {
        /// Human-readable label, e.g. `"dataload.3"`.
        label: String,
        /// Stage whose GPU hosts this operation.
        stage: usize,
        /// Frequency-independent duration.
        time_s: f64,
        /// Power drawn while the operation runs.
        power_w: f64,
    },
}

impl PipeNode {
    /// The computation payload, if this is a computation node.
    pub fn as_comp(&self) -> Option<&Computation> {
        match self {
            PipeNode::Comp(c) => Some(c),
            _ => None,
        }
    }

    /// The pipeline stage this node executes on, if any.
    pub fn stage(&self) -> Option<usize> {
        match self {
            PipeNode::Comp(c) => Some(c.stage),
            PipeNode::Fixed { stage, .. } => Some(*stage),
            _ => None,
        }
    }
}

/// Why an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Consecutive instructions on the same stage (execution order).
    IntraStage,
    /// Activation / gradient hand-off between adjacent (virtual) stages.
    InterStage,
    /// Virtual source/sink attachment.
    Boundary,
}

/// Errors from pipeline construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Stage or microbatch count of zero.
    EmptyPipeline,
    /// Interleaved 1F1B requires the microbatch count to be a multiple of
    /// the stage count (the Megatron constraint).
    MicrobatchesNotDivisible {
        /// Requested microbatches.
        microbatches: usize,
        /// Stage count they must divide by.
        stages: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::EmptyPipeline => write!(f, "stages and microbatches must be positive"),
            ScheduleError::MicrobatchesNotDivisible { microbatches, stages } => write!(
                f,
                "interleaved 1F1B needs microbatches ({microbatches}) divisible by stages ({stages})"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Builder for a [`PipelineDag`], with optional constant-time operations.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    kind: ScheduleKind,
    n_stages: usize,
    n_microbatches: usize,
    data_load_time_s: f64,
    data_load_power_w: f64,
    p2p_time_s: f64,
    p2p_power_w: f64,
}

impl PipelineBuilder {
    /// Starts a builder for `kind` with `n_stages` stages and
    /// `n_microbatches` microbatches.
    pub fn new(kind: ScheduleKind, n_stages: usize, n_microbatches: usize) -> PipelineBuilder {
        PipelineBuilder {
            kind,
            n_stages,
            n_microbatches,
            data_load_time_s: 0.0,
            data_load_power_w: 0.0,
            p2p_time_s: 0.0,
            p2p_power_w: 0.0,
        }
    }

    /// Inserts a fixed-duration data-loading operation before each first-
    /// stage chunk-0 forward (a constant-time operation per §4.4; also the
    /// noise source behind Wide-ResNet's ragged frontier in Appendix G).
    pub fn with_data_loading(mut self, time_s: f64, power_w: f64) -> PipelineBuilder {
        self.data_load_time_s = time_s;
        self.data_load_power_w = power_w;
        self
    }

    /// Inserts a fixed-duration P2P transfer on every inter-stage edge
    /// (models slow links; zero by default because NVLink latencies are
    /// negligible next to computation).
    pub fn with_p2p_latency(mut self, time_s: f64, power_w: f64) -> PipelineBuilder {
        self.p2p_time_s = time_s;
        self.p2p_power_w = power_w;
        self
    }

    /// Builds the DAG.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::EmptyPipeline`] if either dimension is zero;
    /// [`ScheduleError::MicrobatchesNotDivisible`] for invalid interleaved
    /// configurations.
    pub fn build(&self) -> Result<PipelineDag, ScheduleError> {
        if self.n_stages == 0 || self.n_microbatches == 0 {
            return Err(ScheduleError::EmptyPipeline);
        }
        let (n, m) = (self.n_stages, self.n_microbatches);
        let v = self.kind.chunks();
        if v > 1 && m % n != 0 {
            return Err(ScheduleError::MicrobatchesNotDivisible {
                microbatches: m,
                stages: n,
            });
        }
        let mut dag: Dag<PipeNode, DepKind> = Dag::with_capacity(2 * n * m * v + 2, 4 * n * m * v);
        let source = dag.add_node(PipeNode::Source);
        let sink = dag.add_node(PipeNode::Sink);

        // Create computation nodes per stage program.
        let programs: Vec<Vec<crate::schedule::Instruction>> =
            (0..n).map(|s| stage_program(self.kind, s, n, m)).collect();
        let idx = |kind: CompKind| match kind {
            CompKind::Forward => 0usize,
            CompKind::Backward => 1,
            CompKind::Recompute => 2,
        };
        // node id of each (stage, mb, chunk, kind)
        let slot = |s: usize, mb: usize, c: usize| (s * m + mb) * v + c;
        let mut node_of = vec![[None::<NodeId>; 3]; n * m * v];
        for (s, prog) in programs.iter().enumerate() {
            for ins in prog {
                let c = Computation {
                    stage: s,
                    microbatch: ins.microbatch,
                    chunk: ins.chunk,
                    kind: ins.kind,
                };
                let id = dag.add_node(PipeNode::Comp(c));
                node_of[slot(s, ins.microbatch, ins.chunk)][idx(ins.kind)] = Some(id);
            }
        }
        let node = |s: usize, mb: usize, c: usize, k: CompKind| -> NodeId {
            node_of[slot(s, mb, c)][idx(k)].expect("schedule emits every computation")
        };

        // Intra-stage program order.
        for (s, prog) in programs.iter().enumerate() {
            // Optional data loading before each first-stage forward of the
            // first chunk (inputs enter the pipeline there).
            if s == 0 && self.data_load_time_s > 0.0 {
                for mb in 0..m {
                    let load = dag.add_node(PipeNode::Fixed {
                        label: format!("dataload.{mb}"),
                        stage: 0,
                        time_s: self.data_load_time_s,
                        power_w: self.data_load_power_w,
                    });
                    dag.add_edge_unchecked(source, load, DepKind::Boundary);
                    dag.add_edge_unchecked(
                        load,
                        node(0, mb, 0, CompKind::Forward),
                        DepKind::InterStage,
                    );
                }
            }
            for pair in prog.windows(2) {
                let a = node(s, pair[0].microbatch, pair[0].chunk, pair[0].kind);
                let b = node(s, pair[1].microbatch, pair[1].chunk, pair[1].kind);
                dag.add_edge_unchecked(a, b, DepKind::IntraStage);
            }
            let first = prog.first().expect("non-empty program");
            let last = prog.last().expect("non-empty program");
            dag.add_edge_unchecked(
                source,
                node(s, first.microbatch, first.chunk, first.kind),
                DepKind::Boundary,
            );
            dag.add_edge_unchecked(
                node(s, last.microbatch, last.chunk, last.kind),
                sink,
                DepKind::Boundary,
            );
        }

        // Inter-stage activation / gradient dependencies over the virtual
        // stage sequence 0 .. N·v − 1 (virtual stage u = chunk·N + stage).
        let connect = |dag: &mut Dag<PipeNode, DepKind>, a: NodeId, b: NodeId, stage: usize| {
            if self.p2p_time_s > 0.0 {
                let hop = dag.add_node(PipeNode::Fixed {
                    label: format!("p2p.s{stage}"),
                    stage,
                    time_s: self.p2p_time_s,
                    power_w: self.p2p_power_w,
                });
                dag.add_edge_unchecked(a, hop, DepKind::InterStage);
                dag.add_edge_unchecked(hop, b, DepKind::InterStage);
            } else {
                dag.add_edge_unchecked(a, b, DepKind::InterStage);
            }
        };
        let by_vstage = |u: usize| (u % n, u / n); // (stage, chunk)
        let total_vstages = n * v;
        for mb in 0..m {
            for u in 0..total_vstages - 1 {
                let (s0, c0) = by_vstage(u);
                let (s1, c1) = by_vstage(u + 1);
                let a = node(s0, mb, c0, CompKind::Forward);
                let b = node(s1, mb, c1, CompKind::Forward);
                connect(&mut dag, a, b, s0);
                let a = node(s1, mb, c1, CompKind::Backward);
                let b = node(s0, mb, c0, CompKind::Backward);
                connect(&mut dag, a, b, s1);
            }
            // Turnaround at the last virtual stage: its backward (or its
            // recompute) needs its own forward.
            let (s_last, c_last) = by_vstage(total_vstages - 1);
            let turn_src = node(s_last, mb, c_last, CompKind::Forward);
            let turn_dst = if matches!(self.kind, ScheduleKind::EarlyRecompute1F1B) {
                node(s_last, mb, c_last, CompKind::Recompute)
            } else {
                node(s_last, mb, c_last, CompKind::Backward)
            };
            dag.add_edge_unchecked(turn_src, turn_dst, DepKind::InterStage);
            // Recompute of (s, c, mb) requires the stage's own forward; the
            // backward then requires the recompute.
            if matches!(self.kind, ScheduleKind::EarlyRecompute1F1B) {
                for s in 0..n {
                    let f = node(s, mb, 0, CompKind::Forward);
                    let r = node(s, mb, 0, CompKind::Recompute);
                    let b = node(s, mb, 0, CompKind::Backward);
                    dag.add_edge_unchecked(f, r, DepKind::IntraStage);
                    dag.add_edge_unchecked(r, b, DepKind::IntraStage);
                }
            }
        }

        Ok(PipelineDag {
            dag,
            source,
            sink,
            kind: self.kind,
            n_stages: n,
            n_microbatches: m,
        })
    }
}

/// A lowered pipeline iteration: the computation DAG plus metadata.
#[derive(Debug, Clone)]
pub struct PipelineDag {
    /// The node-centric computation DAG (§3.2).
    pub dag: Dag<PipeNode, DepKind>,
    /// Virtual start event.
    pub source: NodeId,
    /// Virtual end event.
    pub sink: NodeId,
    /// Schedule that generated this DAG.
    pub kind: ScheduleKind,
    /// Pipeline depth.
    pub n_stages: usize,
    /// Microbatches per iteration.
    pub n_microbatches: usize,
}

impl PipelineDag {
    /// Iterator over `(node, computation)` for all computation nodes.
    pub fn computations(&self) -> impl Iterator<Item = (NodeId, &Computation)> + '_ {
        self.dag
            .node_ids()
            .filter_map(move |id| self.dag.node(id).as_comp().map(|c| (id, c)))
    }

    /// Iterator over `(node, stage, time_s, power_w)` for fixed-time nodes.
    pub fn fixed_ops(&self) -> impl Iterator<Item = (NodeId, usize, f64, f64)> + '_ {
        self.dag
            .node_ids()
            .filter_map(move |id| match self.dag.node(id) {
                PipeNode::Fixed {
                    stage,
                    time_s,
                    power_w,
                    ..
                } => Some((id, *stage, *time_s, *power_w)),
                _ => None,
            })
    }

    /// Total computation nodes.
    pub fn computation_count(&self) -> usize {
        self.computations().count()
    }

    /// Model chunks per stage (1 unless interleaved).
    pub fn chunks(&self) -> usize {
        self.kind.chunks()
    }
}
