//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *tiny* subset of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open ranges. The generator is
//! xoshiro256++, which is more than adequate for simulation noise and
//! property tests (it is NOT cryptographically secure — neither is the
//! real `StdRng` contract this stands in for, which only promises a
//! deterministic, seedable stream).

use std::ops::Range;

/// Seedable random number generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (shim of `rand::Rng`).
pub trait Rng {
    /// The core 64-bit output function.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 mantissa bits of the 64-bit output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled (shim of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: Rng>(self, rng: &mut R) -> usize {
        debug_assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        self.start + (rng.next_u64() % span as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: Rng>(self, rng: &mut R) -> u64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Shim of `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&x));
            let n: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
