//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s multi-producer **multi-consumer**
//! unbounded channel — the property the worker pool relies on that
//! `std::sync::mpsc` does not offer (std receivers cannot be cloned).
//! Implemented as a `Mutex<VecDeque>` + `Condvar`; throughput is far below
//! the real crossbeam but the blocking/disconnection semantics match.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable across threads (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnection.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking while the channel is empty; fails
        /// once it is empty *and* all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .chan
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues a value, blocking at most `timeout` while the channel
        /// is empty. Distinguishes an elapsed timeout from disconnection
        /// (all senders gone), matching crossbeam's semantics.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, wait) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                if wait.timed_out() && q.is_empty() {
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocking iterator over received values; ends on disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnection_is_observed() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let (tx, rx) = unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
