//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a holder panicked) is recovered by
//! taking the inner guard — matching `parking_lot`, which has no poisoning
//! at all. Performance characteristics differ from the real crate, but the
//! semantics this workspace relies on (mutual exclusion, reader/writer
//! sharing, no poison propagation) are identical.

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Shim of `parking_lot::Mutex`: `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Shim of `parking_lot::RwLock`: `read()` / `write()` never return
/// `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_excludes_and_releases() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poison, the lock stays usable.
        assert_eq!(*m.lock(), 1);
    }
}
