//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the [`Strategy`] trait with `prop_map`, range/tuple/`any`/collection
//! strategies, the [`proptest!`] macro (including an optional
//! `#![proptest_config(...)]` header), and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Unlike the real crate there
//! is **no shrinking**: a failing case panics with its case index and the
//! deterministic per-test seed, which is enough to reproduce (the RNG is
//! seeded from the test name, so reruns hit the same inputs).

use std::marker::PhantomData;
use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default is 256; 64 keeps offline CI fast while still
        // exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this input, draw another.
    Reject,
    /// `prop_assert!` (or similar) failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Deterministic RNG driving generation (xoshiro256++, seeded per test).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test-name string (FNV-1a) so every run
    /// of a given test draws the same inputs.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of values (shim of `proptest::strategy::Strategy`; no
/// shrinking, so `Value` is produced directly rather than via value
/// trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a few times).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded retry; falls back to the last draw if the predicate is
        // pathologically selective (tests then fail loudly, not hang).
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value (shim of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<u16> {
    type Value = u16;
    fn generate(&self, rng: &mut TestRng) -> u16 {
        self.start + rng.below((self.end - self.start) as usize) as u16
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        self.start + rng.below((self.end - self.start) as usize) as u32
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        self.start + rng.below((self.end - self.start) as usize) as i32
    }
}

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Full-range strategies for primitives (shim of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (shim of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// One arm of a [`Union`]: a boxed generator drawing a value from the rng.
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between same-typed strategies (shim of the strategy
/// union behind `proptest::prop_oneof!`; all arms are weighted equally).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// A union drawing uniformly from `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<UnionArm<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Shim of `proptest::prop_oneof!`: picks one of the listed strategies
/// uniformly per case (no weight syntax).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Sampling helpers (shim of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose size is only known inside the
    /// test body (shim of `proptest::sample::Index`): draw one with
    /// `any::<Index>()`, then project with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of `size` elements.
        ///
        /// # Panics
        ///
        /// Panics if `size` is zero, as upstream does.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index an empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.start + rng.below(self.size.end - self.size.start);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Shim of `proptest::proptest!`: runs each embedded test over many
/// generated cases. Supports an optional `#![proptest_config(...)]`
/// header and any number of `#[test] fn name(pat in strategy, ...)`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10).max(10);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed (attempt {attempts}, accepted {accepted}): {msg}"
                            );
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest rejected every generated input ({attempts} attempts)"
                );
            }
        )*
    };
}

/// Shim of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Shim of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Shim of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Shim of `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn map_and_vec_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let strat = proptest::collection::vec((0usize..5, 0.0f64..1.0), 2..6)
            .prop_map(|v| v.into_iter().map(|(a, _)| a).collect::<Vec<_>>());
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&a| a < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 1.0f64..2.0, n in 1usize..4) {
            prop_assume!(n > 0);
            prop_assert!((1.0..2.0).contains(&x), "x out of range: {x}");
            prop_assert_eq!(n * 2 / 2, n);
        }
    }
}
