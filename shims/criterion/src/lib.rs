//! Offline shim for the `criterion` crate.
//!
//! Runs each benchmark closure through a short warmup followed by a
//! fixed-duration measurement window and prints mean wall-clock time per
//! iteration. No statistical analysis, HTML reports, or baselines — just
//! enough for `cargo bench` to build, run, and emit comparable numbers in
//! an environment without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement harness handed to each benchmark function.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure_for, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measure_for: self.measure_for,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    measure_for: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input` under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measure_for, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measure_for, |b| f(b)) /* keep closure arity */;
        self
    }

    /// Ends the group (no-op; prints happen per benchmark).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter (shim of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and parameter display value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle (shim of `criterion::Bencher`).
pub struct Bencher {
    measure_for: Duration,
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f` repeatedly for the measurement window.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup: a few calls to populate caches and resolve laziness.
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measure_for && iters >= 10 {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one<F>(label: &str, measure_for: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        measure_for,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "bench {label:<50} {:>14} /iter ({iters} iters)",
                fmt_time(per_iter)
            );
        }
        None => println!("bench {label:<50} (no measurement: b.iter never called)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Shim of `criterion::criterion_group!`: bundles benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Shim of `criterion::criterion_main!`: generates `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
