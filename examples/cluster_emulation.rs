//! Large-scale cluster emulation (§6.3): strong-scale Bloom 176B across
//! the Table 5 configurations, inject different straggler causes, and
//! compare Perseus against the baselines at cluster level.
//!
//! Run: `cargo run --release --example cluster_emulation`

use perseus::cluster::{strong_scaling_table5, ClusterConfig, Emulator, Policy, StragglerCause};
use perseus::core::FrontierOptions;
use perseus::gpu::{FreqMHz, GpuSpec};
use perseus::models::zoo;
use perseus::pipeline::ScheduleKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One emulator per strong-scaling row (Table 5): 1,024 GPUs here to
    // keep the example snappy; the emulation_suite bench runs all rows.
    let row = strong_scaling_table5()[0];
    println!(
        "{} GPUs: {} pipelines x {} stages x TP {}  ({} microbatches/pipeline)",
        row.n_gpus, row.n_pipelines, row.n_stages, row.tensor_parallel, row.n_microbatches
    );
    let emu = Emulator::new(ClusterConfig {
        model: zoo::bloom_176b(1),
        gpu: GpuSpec::a100_sxm(),
        n_stages: row.n_stages,
        n_microbatches: row.n_microbatches,
        n_pipelines: row.n_pipelines,
        tensor_parallel: row.tensor_parallel,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })?;
    println!(
        "frontier: T_min {:.2} s, T* {:.2} s ({} points)\n",
        emu.frontier().t_min(),
        emu.frontier().t_star(),
        emu.frontier().points().len()
    );

    // Different root causes behind the same kind of slowdown (§2.3).
    let causes = [
        (
            "thermal throttle @ 1110 MHz",
            StragglerCause::ThermalThrottle {
                freq_cap: FreqMHz(1110),
            },
        ),
        (
            "I/O stall 60 ms/microbatch",
            StragglerCause::IoStall { stall_s: 0.06 },
        ),
        (
            "announced 1.2x slowdown",
            StragglerCause::Slowdown { degree: 1.2 },
        ),
    ];
    for (label, cause) in causes {
        let t = emu.straggler_iteration_time(cause)?;
        println!(
            "{label}: straggler iteration time {:.2} s ({:.2}x)",
            t,
            t / emu.frontier().t_min()
        );
    }
    println!();

    // Cluster-level energy under a 1.2x straggler, per policy.
    let cause = Some(StragglerCause::Slowdown { degree: 1.2 });
    let base = emu.report(Policy::AllMax, cause)?;
    println!(
        "{:<18} {:>14} {:>12} {:>10}",
        "policy", "cluster MJ/iter", "avg MW", "saved %"
    );
    for (policy, name) in [
        (Policy::AllMax, "all-max"),
        (Policy::EnvPipe, "envpipe"),
        (Policy::ZeusGlobal, "zeus-global"),
        (Policy::Perseus, "perseus"),
        (Policy::MinEnergyOracle, "oracle (bound)"),
    ] {
        let r = emu.report(policy, cause)?;
        println!(
            "{:<18} {:>14.2} {:>12.3} {:>10.1}",
            name,
            r.total_j() / 1e6,
            r.avg_power_w() / 1e6,
            (1.0 - r.total_j() / base.total_j()) * 100.0
        );
    }
    Ok(())
}
