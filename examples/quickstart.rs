//! Quickstart: remove intrinsic energy bloat from a GPT-3 1.3B pipeline.
//!
//! Builds a four-stage 1F1B pipeline on simulated A100s, characterizes the
//! iteration time–energy Pareto frontier, and compares the fastest
//! Perseus schedule against the all-max-frequency default.
//!
//! Run: `cargo run --release --example quickstart`

use perseus::baselines::AllMaxFreq;
use perseus::core::{characterize, FrontierOptions, PlanContext, Planner};
use perseus::gpu::GpuSpec;
use perseus::models::{min_imbalance_partition, zoo};
use perseus::pipeline::{PipelineBuilder, ScheduleKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a model and a GPU; partition layers across pipeline stages
    //    with minimum imbalance (paper Appendix B).
    let gpu = GpuSpec::a100_pcie();
    let model = zoo::gpt3_xl(4); // GPT-3 1.3B, microbatch size 4
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, 4)?;
    println!(
        "partitioned {} layers into 4 stages {:?} (imbalance ratio {:.2})",
        model.num_layers(),
        partition.boundaries(),
        partition.imbalance_ratio(&weights),
    );

    // 2. Build the computation DAG of one training iteration (1F1B with
    //    16 microbatches) and join it with per-stage profiles.
    let stages = model.stage_workloads(&partition, &gpu)?;
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 16).build()?;
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages)?;

    // 3. Characterize the full iteration time-energy Pareto frontier
    //    (paper Algorithm 1: iterative graph cuts).
    let frontier = characterize(&ctx, &FrontierOptions::default())?;
    println!(
        "frontier: {} points, T_min {:.3} s .. T* {:.3} s",
        frontier.points().len(),
        frontier.t_min(),
        frontier.t_star(),
    );

    // 4. Compare the fastest frontier point (intrinsic bloat removed)
    //    against the default all-max-frequency schedule.
    let base = AllMaxFreq
        .plan(&ctx)?
        .select(None)
        .energy_report(&ctx, None);
    let perseus = frontier.fastest().schedule.energy_report(&ctx, None);
    println!(
        "all-max:  {:.3} s, {:.0} J ({:.0} W avg)",
        base.iter_time_s,
        base.total_j(),
        base.avg_power_w()
    );
    println!(
        "perseus:  {:.3} s, {:.0} J ({:.0} W avg)",
        perseus.iter_time_s,
        perseus.total_j(),
        perseus.avg_power_w()
    );
    println!(
        "=> {:.1}% energy saved at {:.2}% slowdown",
        (1.0 - perseus.total_j() / base.total_j()) * 100.0,
        (perseus.iter_time_s / base.iter_time_s - 1.0) * 100.0,
    );
    Ok(())
}
