//! Bring your own model: Perseus only needs per-layer costs, so any
//! architecture works. This example defines a custom multimodal-style
//! model (a vision stem, a stack of transformer layers, a heavy fusion
//! head), partitions it, and optimizes its pipeline — including a
//! constant-time data-loading operation (§4.4) that the optimizer must
//! plan around but cannot slow down.
//!
//! Run: `cargo run --release --example custom_model`

use perseus::baselines::{potential_savings, AllMaxFreq};
use perseus::core::{characterize, FrontierOptions, PlanContext, Planner};
use perseus::gpu::GpuSpec;
use perseus::models::{min_imbalance_partition, LayerCost, LayerKind, ModelSpec};
use perseus::pipeline::{PipelineBuilder, ScheduleKind};

fn layer(name: &str, kind: LayerKind, gflops: f64, mem_frac: f64) -> LayerCost {
    LayerCost {
        name: name.to_string(),
        kind,
        fwd_tflops: gflops * 1e9,
        bwd_tflops: 2.0 * gflops * 1e9,
        fwd_mem_frac: mem_frac,
        bwd_mem_frac: mem_frac + 0.02,
        fwd_util: 0.82,
        bwd_util: 0.9,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom 18-unit model: memory-bound vision stem, 15 uniform
    // transformer layers, cross-attention fusion, and a big output head.
    let mut layers = vec![layer("vision_stem", LayerKind::ConvStem, 220.0, 0.35)];
    for i in 0..15 {
        layers.push(layer(
            &format!("block.{i}"),
            LayerKind::TransformerDecoder,
            410.0,
            0.10,
        ));
    }
    layers.push(layer(
        "fusion",
        LayerKind::TransformerCrossDecoder,
        560.0,
        0.12,
    ));
    layers.push(layer("output_head", LayerKind::LmHead, 730.0, 0.05));
    let model = ModelSpec {
        name: "multimodal-custom".into(),
        params_b: 2.1,
        microbatch: 8,
        layers,
    };

    let gpu = GpuSpec::a40();
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, 4)?;
    println!(
        "partition {:?}, imbalance ratio {:.2}",
        partition.boundaries(),
        partition.imbalance_ratio(&weights)
    );

    let stages = model.stage_workloads(&partition, &gpu)?;
    // Each first-stage forward waits 3 ms for the dataloader at 45 W —
    // a single-choice node the optimizer treats as unmodifiable.
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 12)
        .with_data_loading(0.003, 45.0)
        .build()?;
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages)?;

    let frontier = characterize(&ctx, &FrontierOptions::default())?;
    let base = AllMaxFreq
        .plan(&ctx)?
        .select(None)
        .energy_report(&ctx, None);
    let fast = frontier.fastest().schedule.energy_report(&ctx, None);
    println!(
        "intrinsic bloat removal: {:.0} J -> {:.0} J ({:.1}% saved, {:.2}% slowdown)",
        base.total_j(),
        fast.total_j(),
        (1.0 - fast.total_j() / base.total_j()) * 100.0,
        (fast.iter_time_s / base.iter_time_s - 1.0) * 100.0,
    );
    println!(
        "potential savings bound (§2.4, min-energy oracle): {:.1}%",
        potential_savings(&ctx)? * 100.0
    );

    // Sweep a few straggler scenarios.
    for degree in [1.1, 1.25, 1.5] {
        let t_prime = frontier.t_min() * degree;
        let p = frontier.lookup(t_prime);
        let r = p.schedule.energy_report(&ctx, Some(t_prime));
        let b = AllMaxFreq
            .plan(&ctx)?
            .select(None)
            .energy_report(&ctx, Some(t_prime));
        println!(
            "straggler x{degree:.2}: perseus {:.0} J vs all-max {:.0} J ({:.1}% saved)",
            r.total_j(),
            b.total_j(),
            (1.0 - r.total_j() / b.total_j()) * 100.0,
        );
    }
    Ok(())
}
