//! Straggler reaction through the Perseus server/client workflow (§3.2):
//! register a job, submit profiles, deploy the fastest schedule, then
//! react to a datacenter straggler notification with an instant frontier
//! lookup — and watch a client realize the new schedule asynchronously.
//!
//! Run: `cargo run --release --example straggler_reaction`

use perseus::core::FrontierOptions;
use perseus::gpu::{GpuSpec, SimGpu};
use perseus::models::{min_imbalance_partition, zoo};
use perseus::pipeline::{CompKind, OpKey, PipelineBuilder, ScheduleKind};
use perseus::profiler::{OpProfile, ProfileDb};
use perseus::server::{ClientSession, JobSpec, PerseusServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSpec::a40();
    let model = zoo::bloom_3b(4);
    let n_stages = 4;
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, n_stages)?;
    let stages = model.stage_workloads(&partition, &gpu)?;
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, n_stages, 8).build()?;

    // Server side: register the job (its computation DAG + hardware).
    let server = PerseusServer::new();
    server.register_job(JobSpec {
        name: "bloom-3b".into(),
        pipe: pipe.clone(),
        gpu: gpu.clone(),
        power_states: None,
    })?;

    // Client side: the online profiler measures each computation type.
    // (Here we submit model-grounded profiles; `ClientSession::
    // profile_sweep` runs the in-vivo frequency sweep of §5.)
    let mut profiles: ProfileDb<OpKey> = ProfileDb::new();
    for (s, sw) in stages.iter().enumerate() {
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Forward,
            },
            OpProfile::from_model(&gpu, &sw.fwd),
        );
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Backward,
            },
            OpProfile::from_model(&gpu, &sw.bwd),
        );
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Recompute,
            },
            OpProfile::from_model(&gpu, &sw.fwd),
        );
    }

    // Step 2+3: characterize the frontier (off-thread, on the server's
    // worker pool) and deploy the fastest schedule.
    let d0 = server
        .submit_profiles("bloom-3b", profiles, &FrontierOptions::default())?
        .wait()?;
    println!(
        "deployed v{}: planned iteration {:.3} s (frontier T_min {:.3} s, T* {:.3} s)",
        d0.version,
        d0.planned_time_s,
        server.frontier("bloom-3b").unwrap().t_min(),
        server.frontier("bloom-3b").unwrap().t_star(),
    );

    // A client (one per accelerator) realizes the schedule: set_speed is
    // called before each computation; the async controller applies clocks
    // without blocking training.
    let mut client = ClientSession::new(1, SimGpu::new(gpu.clone()));
    client.load_schedule(&pipe, &d0.schedule);
    let program: Vec<CompKind> = pipe
        .computations()
        .filter(|(_, c)| c.stage == 1)
        .map(|(_, c)| c.kind)
        .collect();
    for &kind in &program {
        client.set_speed(kind);
    }
    client.sync();
    println!(
        "client stage 1 drove one iteration; device ends locked at {}",
        client.gpu().lock().locked_freq()
    );

    // Step 4+5: the rack manager announces thermal throttling on GPU 2 in
    // 30 seconds, inflating the straggler's iteration time by 1.25x.
    server.set_straggler("bloom-3b", 2, 30.0, 1.25)?;
    println!("straggler announced (fires in 30 s)...");
    for step in 0..2 {
        let deployments = server.advance_time("bloom-3b", 20.0)?;
        for d in &deployments {
            println!(
                "t+{}s: redeployed v{} for T' = {:.3} s -> planned {:.3} s",
                20 * (step + 1),
                d.version,
                d.t_prime,
                d.planned_time_s
            );
            client.load_schedule(&pipe, &d.schedule);
        }
    }

    // The straggler recovers: schedules snap back to the fastest point.
    let d = server
        .set_straggler("bloom-3b", 2, 0.0, 1.0)?
        .expect("immediate");
    println!(
        "straggler recovered: v{} back to {:.3} s",
        d.version, d.planned_time_s
    );
    Ok(())
}
