//! `perseus` — command-line front end for the library.
//!
//! ```text
//! perseus models
//! perseus partition  <model> --stages N [--gpu a100|a40|h100|v100|a100-sxm]
//! perseus frontier   <model> --stages N --microbatches M [--gpu ..] [--csv]
//! perseus timeline   <model> --stages N --microbatches M [--gpu ..]
//! perseus emulate    <model> --stages N --microbatches M --pipelines D
//!                    [--tp T] [--gpu ..] [--straggler DEGREE]
//! ```

use std::process::ExitCode;

use perseus::baselines::AllMaxFreq;
use perseus::cluster::{ClusterConfig, Emulator, Policy, StragglerCause};
use perseus::core::{characterize, FrontierOptions, PlanContext, Planner};
use perseus::gpu::GpuSpec;
use perseus::models::{min_imbalance_partition, zoo, ModelSpec};
use perseus::pipeline::{render_timeline, PipelineBuilder, ScheduleKind};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked")),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
        }
    }
}

fn gpu_by_name(name: &str) -> Result<GpuSpec, String> {
    match name {
        "a100" | "a100-pcie" => Ok(GpuSpec::a100_pcie()),
        "a100-sxm" => Ok(GpuSpec::a100_sxm()),
        "a40" => Ok(GpuSpec::a40()),
        "h100" | "h100-sxm" => Ok(GpuSpec::h100_sxm()),
        "v100" => Ok(GpuSpec::v100()),
        other => Err(format!(
            "unknown GPU {other:?} (try a100, a100-sxm, a40, h100, v100)"
        )),
    }
}

fn model_by_name(name: &str, microbatch: usize) -> Result<ModelSpec, String> {
    zoo::all_presets()
        .into_iter()
        .find(|(_, n)| *n == name)
        .map(|(ctor, _)| ctor(microbatch))
        .ok_or_else(|| {
            let names: Vec<&str> = zoo::all_presets().iter().map(|(_, n)| *n).collect();
            format!("unknown model {name:?}; available: {}", names.join(", "))
        })
}

fn usage() -> &'static str {
    "usage:
  perseus models
  perseus partition <model> [--stages N] [--gpu NAME] [--microbatch B]
  perseus frontier  <model> [--stages N] [--microbatches M] [--gpu NAME] [--csv]
  perseus timeline  <model> [--stages N] [--microbatches M] [--gpu NAME]
  perseus emulate   <model> [--stages N] [--microbatches M] [--pipelines D]
                    [--tp T] [--gpu NAME] [--straggler DEGREE]"
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1).collect());
    let cmd = args.positional.first().cloned().unwrap_or_default();
    match cmd.as_str() {
        "models" => {
            for (ctor, name) in zoo::all_presets() {
                let m = ctor(1);
                println!(
                    "{name:<18} {:>7.1}B params, {:>3} partitionable layers",
                    m.params_b,
                    m.num_layers()
                );
            }
            Ok(())
        }
        "partition" => {
            let model_name = args.positional.get(1).ok_or_else(|| usage().to_string())?;
            let gpu = gpu_by_name(args.flag("gpu").unwrap_or("a100"))?;
            let mb = args.usize_flag("microbatch", 4)?;
            let stages = args.usize_flag("stages", 4)?;
            let model = model_by_name(model_name, mb)?;
            let weights = model.fwd_latency_weights(&gpu);
            let part = min_imbalance_partition(&weights, stages).map_err(|e| e.to_string())?;
            println!(
                "model: {} ({} layers) on {}",
                model.name,
                model.num_layers(),
                gpu.name
            );
            println!("partition: {:?}", part.boundaries());
            println!("imbalance ratio: {:.3}", part.imbalance_ratio(&weights));
            for (s, w) in part.stage_weights(&weights).iter().enumerate() {
                println!("  stage {s}: {:.2} ms forward at max clock", w * 1e3);
            }
            Ok(())
        }
        "frontier" | "timeline" => {
            let model_name = args.positional.get(1).ok_or_else(|| usage().to_string())?;
            let gpu = gpu_by_name(args.flag("gpu").unwrap_or("a100"))?;
            let mb = args.usize_flag("microbatch", 4)?;
            let stages_n = args.usize_flag("stages", 4)?;
            let m = args.usize_flag("microbatches", if cmd == "timeline" { 6 } else { 16 })?;
            let model = model_by_name(model_name, mb)?;
            let weights = model.fwd_latency_weights(&gpu);
            let part = min_imbalance_partition(&weights, stages_n).map_err(|e| e.to_string())?;
            let stages = model
                .stage_workloads(&part, &gpu)
                .map_err(|e| e.to_string())?;
            let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, stages_n, m)
                .build()
                .map_err(|e| e.to_string())?;
            let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages)
                .map_err(|e| e.to_string())?;
            let frontier =
                characterize(&ctx, &FrontierOptions::default()).map_err(|e| e.to_string())?;
            if cmd == "timeline" {
                let base = AllMaxFreq
                    .plan(&ctx)
                    .map_err(|e| e.to_string())?
                    .into_schedule()
                    .expect("single schedule");
                println!("== all computations at maximum frequency ==");
                println!(
                    "{}",
                    render_timeline(&pipe, |id, _| base.realized_dur[id.index()], 100)
                );
                println!("== Perseus T_min energy schedule ==");
                let p = frontier.fastest();
                println!(
                    "{}",
                    render_timeline(&pipe, |id, _| p.schedule.realized_dur[id.index()], 100)
                );
                return Ok(());
            }
            if args.has("csv") {
                println!("time_s,energy_j");
                for p in frontier.points() {
                    let r = p.schedule.energy_report(&ctx, None);
                    println!("{:.6},{:.2}", r.iter_time_s, r.total_j());
                }
            } else {
                let base = AllMaxFreq
                    .plan(&ctx)
                    .map_err(|e| e.to_string())?
                    .select(None)
                    .energy_report(&ctx, None);
                let fast = frontier.fastest().schedule.energy_report(&ctx, None);
                println!(
                    "frontier: {} points, T_min {:.3} s .. T* {:.3} s",
                    frontier.points().len(),
                    frontier.t_min(),
                    frontier.t_star()
                );
                println!(
                    "intrinsic savings at T_min: {:.1}% ({:.0} J -> {:.0} J), slowdown {:.2}%",
                    (1.0 - fast.total_j() / base.total_j()) * 100.0,
                    base.total_j(),
                    fast.total_j(),
                    (fast.iter_time_s / base.iter_time_s - 1.0) * 100.0
                );
            }
            Ok(())
        }
        "emulate" => {
            let model_name = args.positional.get(1).ok_or_else(|| usage().to_string())?;
            let gpu = gpu_by_name(args.flag("gpu").unwrap_or("a100-sxm"))?;
            let mb = args.usize_flag("microbatch", 1)?;
            let model = model_by_name(model_name, mb)?;
            let emu = Emulator::new(ClusterConfig {
                model,
                gpu,
                n_stages: args.usize_flag("stages", 8)?,
                n_microbatches: args.usize_flag("microbatches", 24)?,
                n_pipelines: args.usize_flag("pipelines", 8)?,
                tensor_parallel: args.usize_flag("tp", 1)?,
                schedule: ScheduleKind::OneFOneB,
                frontier: FrontierOptions::default(),
            })
            .map_err(|e| e.to_string())?;
            let straggler = match args.flag("straggler") {
                None => None,
                Some(v) => Some(StragglerCause::Slowdown {
                    degree: v
                        .parse()
                        .map_err(|_| format!("--straggler expects a number, got {v:?}"))?,
                }),
            };
            let base = emu
                .report(Policy::AllMax, straggler)
                .map_err(|e| e.to_string())?;
            println!(
                "{} GPUs, sync iteration {:.2} s",
                emu.config().n_gpus(),
                base.sync_time_s
            );
            for (policy, name) in [
                (Policy::AllMax, "all-max"),
                (Policy::EnvPipe, "envpipe"),
                (Policy::ZeusGlobal, "zeus-global"),
                (Policy::Perseus, "perseus"),
            ] {
                let r = emu.report(policy, straggler).map_err(|e| e.to_string())?;
                println!(
                    "{name:<12} {:>12.1} kJ/iter  {:>8.1} kW  ({:.1}% saved)",
                    r.total_j() / 1e3,
                    r.avg_power_w() / 1e3,
                    (1.0 - r.total_j() / base.total_j()) * 100.0
                );
            }
            Ok(())
        }
        "" | "help" | "--help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
