//! Perseus façade crate.
//!
//! Re-exports every subsystem crate of the Perseus workspace under one
//! namespace so examples and downstream users need a single dependency.
//!
//! See the repository `README.md` for an overview and `DESIGN.md` for the
//! system inventory.

pub use perseus_baselines as baselines;
pub use perseus_cluster as cluster;
pub use perseus_core as core;
pub use perseus_dag as dag;
pub use perseus_flow as flow;
pub use perseus_gpu as gpu;
pub use perseus_models as models;
pub use perseus_pipeline as pipeline;
pub use perseus_profiler as profiler;
pub use perseus_server as server;
pub use perseus_telemetry as telemetry;
pub use perseus_viz as viz;

/// README examples are kept compiling: the fenced Rust block in
/// `README.md` runs as a doctest of this crate.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
