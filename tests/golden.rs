//! Golden-trace regression tests: the committed fixtures under
//! `tests/golden/` are the byte-exact outputs of the experiment report
//! generators. Any change to the planning stack that shifts a single
//! digit of a published table fails here — numerical drift must be
//! reviewed (and the fixture regenerated) deliberately, never absorbed
//! silently.
//!
//! Regenerate after an intended change:
//!
//! ```text
//! cargo run --release -p perseus-bench --bin table3_intrinsic > tests/golden/table3_intrinsic.txt
//! cargo run --release -p perseus-bench --bin fig9_frontier    > tests/golden/fig9_frontier.txt
//! ```

/// Byte-for-byte comparison with a readable first-divergence report
/// (a full `assert_eq!` dump of a 400-line table helps no one).
fn assert_matches_golden(got: &str, golden: &str, fixture: &str) {
    if got == golden {
        return;
    }
    for (i, (g, w)) in got.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "first divergence from tests/golden/{fixture} at line {}",
            i + 1
        );
    }
    panic!(
        "output length diverged from tests/golden/{fixture}: got {} lines, fixture has {}",
        got.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn table3_intrinsic_matches_golden_fixture() {
    let mut buf = Vec::new();
    perseus_bench::table3_report(&mut buf).expect("render table 3");
    assert_matches_golden(
        &String::from_utf8(buf).expect("utf-8 output"),
        include_str!("golden/table3_intrinsic.txt"),
        "table3_intrinsic.txt",
    );
}

#[test]
fn fig9_frontier_matches_golden_fixture() {
    let mut buf = Vec::new();
    perseus_bench::fig9_report(&mut buf, false).expect("render figure 9");
    assert_matches_golden(
        &String::from_utf8(buf).expect("utf-8 output"),
        include_str!("golden/fig9_frontier.txt"),
        "fig9_frontier.txt",
    );
}

/// Figure 7/8 attribution breakdowns, rendered from one shared emulator
/// cache. Beyond byte-identity, the embedded claim lines are the
/// acceptance gates of the ledger: intrinsic AND extrinsic bloat both
/// nonzero at slowdown 1.2 (fig7), extrinsic share monotone in the
/// straggler slowdown (fig8). Regenerate deliberately:
///
/// ```text
/// cargo run --release -p perseus-bench --bin fig7_breakdown > tests/golden/fig7_breakdown.txt
/// cargo run --release -p perseus-bench --bin fig8_scaling   > tests/golden/fig8_scaling.txt
/// ```
#[test]
fn breakdown_reports_match_golden_fixtures() {
    let (mut f7, mut f8) = (Vec::new(), Vec::new());
    let rows = perseus_bench::breakdown_reports_with(
        &mut f7,
        &mut f8,
        &perseus_telemetry::Telemetry::disabled(),
    )
    .expect("render breakdown reports");
    let f7 = String::from_utf8(f7).expect("utf-8 output");
    let f8 = String::from_utf8(f8).expect("utf-8 output");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
        std::fs::write(format!("{dir}/fig7_breakdown.txt"), &f7).expect("write fixture");
        std::fs::write(format!("{dir}/fig8_scaling.txt"), &f8).expect("write fixture");
    }
    assert_matches_golden(
        &f7,
        include_str!("golden/fig7_breakdown.txt"),
        "fig7_breakdown.txt",
    );
    assert_matches_golden(
        &f8,
        include_str!("golden/fig8_scaling.txt"),
        "fig8_scaling.txt",
    );
    // The claim lines gate the qualitative shape, not just the digits.
    assert!(f7.contains("intrinsic and extrinsic bloat both nonzero at slowdown 1.2: HOLDS"));
    assert!(f8.contains("grows with straggler slowdown in every config: HOLDS"));
    assert!(!f7.contains("VIOLATED") && !f8.contains("VIOLATED"));
    // Four bars (2 models x 2 policies), all with positive energy, and
    // perseus never bloatier than all-max.
    assert_eq!(rows.len(), 4);
    assert!(rows.iter().all(|r| r.breakdown.total_j() > 0.0));
    for pair in rows.chunks(2) {
        let (allmax, perseus) = (&pair[0].breakdown, &pair[1].breakdown);
        assert!(
            perseus.intrinsic_j + perseus.extrinsic_j < allmax.intrinsic_j + allmax.extrinsic_j
        );
    }
}

// ---- Telemetry neutrality: enabling metrics may never move a digit ----

#[test]
fn table3_with_telemetry_enabled_is_byte_identical() {
    let tel = perseus_telemetry::Telemetry::enabled();
    let mut buf = Vec::new();
    perseus_bench::table3_report_with(&mut buf, &tel).expect("render table 3");
    assert_matches_golden(
        &String::from_utf8(buf).expect("utf-8 output"),
        include_str!("golden/table3_intrinsic.txt"),
        "table3_intrinsic.txt",
    );
    // The run did record something — neutrality is not vacuous.
    assert!(!tel.snapshot().is_empty());
}

#[test]
fn fig9_with_telemetry_enabled_is_byte_identical() {
    let tel = perseus_telemetry::Telemetry::enabled();
    let mut buf = Vec::new();
    perseus_bench::fig9_report_with(&mut buf, false, &tel).expect("render figure 9");
    assert_matches_golden(
        &String::from_utf8(buf).expect("utf-8 output"),
        include_str!("golden/fig9_frontier.txt"),
        "fig9_frontier.txt",
    );
    assert!(!tel.snapshot().is_empty());
}

/// The metrics text format itself is a stable interface: a fixed metric
/// program (explicit values only — no wall-clock anywhere) must render to
/// the committed fixture byte for byte. Regenerate deliberately after an
/// intended format change:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test --test golden metrics_snapshot
/// ```
#[test]
fn metrics_snapshot_matches_golden_fixture() {
    let tel = perseus_telemetry::Telemetry::enabled();
    tel.counter("perseus_flow_max_flow_calls_total").add(3);
    tel.counter_with(
        "perseus_server_degraded_lookups_total",
        &[("job", "gpt3-xl")],
    )
    .inc();
    tel.counter_with(
        "perseus_server_degraded_lookups_total",
        &[("job", "bloom-176b")],
    )
    .add(2);
    tel.float_counter_with(
        "perseus_emulator_stage_busy_seconds_total",
        &[("policy", "perseus"), ("stage", "0")],
    )
    .add(1.5);
    tel.gauge("perseus_server_workers_busy").set(2);
    let lookups = tel.histogram_with("perseus_server_lookup_seconds", &[("job", "gpt3-xl")]);
    lookups.observe(5e-7);
    lookups.observe(2e-6);
    lookups.observe(0.25);
    let got = tel.snapshot().render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/metrics_snapshot.txt"
            ),
            &got,
        )
        .expect("write fixture");
    }
    assert_matches_golden(
        &got,
        include_str!("golden/metrics_snapshot.txt"),
        "metrics_snapshot.txt",
    );
}
