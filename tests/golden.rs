//! Golden-trace regression tests: the committed fixtures under
//! `tests/golden/` are the byte-exact outputs of the experiment report
//! generators. Any change to the planning stack that shifts a single
//! digit of a published table fails here — numerical drift must be
//! reviewed (and the fixture regenerated) deliberately, never absorbed
//! silently.
//!
//! Regenerate after an intended change:
//!
//! ```text
//! cargo run --release -p perseus-bench --bin table3_intrinsic > tests/golden/table3_intrinsic.txt
//! cargo run --release -p perseus-bench --bin fig9_frontier    > tests/golden/fig9_frontier.txt
//! ```

/// Byte-for-byte comparison with a readable first-divergence report
/// (a full `assert_eq!` dump of a 400-line table helps no one).
fn assert_matches_golden(got: &str, golden: &str, fixture: &str) {
    if got == golden {
        return;
    }
    for (i, (g, w)) in got.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "first divergence from tests/golden/{fixture} at line {}",
            i + 1
        );
    }
    panic!(
        "output length diverged from tests/golden/{fixture}: got {} lines, fixture has {}",
        got.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn table3_intrinsic_matches_golden_fixture() {
    let mut buf = Vec::new();
    perseus_bench::table3_report(&mut buf).expect("render table 3");
    assert_matches_golden(
        &String::from_utf8(buf).expect("utf-8 output"),
        include_str!("golden/table3_intrinsic.txt"),
        "table3_intrinsic.txt",
    );
}

#[test]
fn fig9_frontier_matches_golden_fixture() {
    let mut buf = Vec::new();
    perseus_bench::fig9_report(&mut buf, false).expect("render figure 9");
    assert_matches_golden(
        &String::from_utf8(buf).expect("utf-8 output"),
        include_str!("golden/fig9_frontier.txt"),
        "fig9_frontier.txt",
    );
}
