//! Cross-crate checks of the paper's headline claims, on scaled-down
//! configurations so they run quickly in debug builds.

use perseus::baselines::{AllMaxFreq, EnvPipe, EnvPipeOptions, ZeusGlobal};
use perseus::cluster::{ClusterConfig, Emulator, Policy};
use perseus::core::{characterize, FrontierOptions, PlanContext, Planner};
use perseus::gpu::GpuSpec;
use perseus::models::zoo;
use perseus::pipeline::{PipelineBuilder, ScheduleKind};

fn emulator(model: perseus::models::ModelSpec, gpu: GpuSpec, m: usize) -> Emulator {
    Emulator::new(ClusterConfig {
        model,
        gpu,
        n_stages: 4,
        n_microbatches: m,
        n_pipelines: 2,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })
    .expect("emulator")
}

#[test]
fn headline_intrinsic_savings_with_negligible_slowdown() {
    // §6.2.1: double-digit percentage savings at ~zero slowdown.
    let emu = emulator(zoo::gpt3_xl(4), GpuSpec::a100_pcie(), 8);
    let s = emu.savings(Policy::Perseus, None).expect("savings");
    assert!(
        s.savings_pct > 8.0,
        "GPT-3 1.3B intrinsic savings: {:.1}%",
        s.savings_pct
    );
    assert!(s.slowdown_pct < 0.5, "slowdown: {:.2}%", s.slowdown_pct);
}

#[test]
fn a40_saves_more_than_a100() {
    // §6.2.1: the wider A40 clock range yields larger savings.
    let a100 = emulator(zoo::bloom_3b(4), GpuSpec::a100_pcie(), 8)
        .savings(Policy::Perseus, None)
        .expect("savings");
    let a40 = emulator(zoo::bloom_3b(4), GpuSpec::a40(), 8)
        .savings(Policy::Perseus, None)
        .expect("savings");
    assert!(
        a40.savings_pct > a100.savings_pct,
        "A40 {:.1}% should beat A100 {:.1}%",
        a40.savings_pct,
        a100.savings_pct
    );
}

#[test]
fn savings_peak_near_t_star_then_wane() {
    // §6.2.2 / Figure 8 shape.
    let emu = emulator(zoo::bert_huge(8), GpuSpec::a100_pcie(), 6);
    let t_star_ratio = emu.frontier().t_star() / emu.frontier().t_min();
    let before = emu
        .savings(Policy::Perseus, Some(1.0 + (t_star_ratio - 1.0) * 0.3))
        .unwrap();
    let near = emu.savings(Policy::Perseus, Some(t_star_ratio)).unwrap();
    let far = emu
        .savings(Policy::Perseus, Some(t_star_ratio * 1.8))
        .unwrap();
    assert!(
        near.savings_pct > before.savings_pct * 0.9,
        "savings grow toward T*"
    );
    assert!(far.savings_pct < near.savings_pct, "savings wane past T*");
}

#[test]
fn table6_trend_fewer_microbatches_more_savings() {
    // §6.3 / Table 6: for (near-)balanced models like GPT-3 175B, intrinsic
    // savings come from the warmup/flush microbatches, whose share shrinks
    // as microbatches grow — so strong scaling (fewer microbatches per
    // pipeline) raises the savings percentage. A perfectly balanced
    // synthetic model isolates exactly that mechanism.
    let balanced = perseus::models::ModelSpec {
        name: "balanced-16".into(),
        params_b: 1.0,
        microbatch: 4,
        layers: (0..16)
            .map(|i| perseus::models::LayerCost {
                name: format!("layer.{i}"),
                kind: perseus::models::LayerKind::TransformerDecoder,
                fwd_tflops: 5.0e12,
                bwd_tflops: 1.0e13,
                fwd_mem_frac: 0.1,
                bwd_mem_frac: 0.12,
                fwd_util: 0.85,
                bwd_util: 0.92,
            })
            .collect(),
    };
    let s4 = emulator(balanced.clone(), GpuSpec::a100_pcie(), 4)
        .savings(Policy::Perseus, None)
        .unwrap()
        .savings_pct;
    let s16 = emulator(balanced, GpuSpec::a100_pcie(), 16)
        .savings(Policy::Perseus, None)
        .unwrap()
        .savings_pct;
    assert!(s4 > s16, "M=4 {:.1}% should beat M=16 {:.1}%", s4, s16);
}

#[test]
fn perseus_pareto_dominates_zeus_global_everywhere() {
    // §6.4 / Figure 9.
    let gpu = GpuSpec::a100_pcie();
    let model = zoo::gpt3_xl(4);
    let weights = model.fwd_latency_weights(&gpu);
    let partition = perseus::models::min_imbalance_partition(&weights, 4).unwrap();
    let stages = model.stage_workloads(&partition, &gpu).unwrap();
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 6)
        .build()
        .unwrap();
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    for z in ZeusGlobal
        .plan(&ctx)
        .unwrap()
        .into_sweep()
        .expect("sweep planner")
    {
        let zr = z.energy_report(&ctx, None);
        let pr = frontier
            .lookup(zr.iter_time_s)
            .schedule
            .energy_report(&ctx, None);
        assert!(
            pr.total_j() <= zr.total_j() * 1.01,
            "at {:.3}s: perseus {:.0} J vs zeus {:.0} J",
            zr.iter_time_s,
            pr.total_j(),
            zr.total_j()
        );
    }
}

#[test]
fn envpipe_cannot_exploit_stragglers() {
    // Figure 7: EnvPipe has no frontier, so extrinsic slack is wasted.
    let emu = emulator(zoo::gpt3_xl(4), GpuSpec::a40(), 8);
    let p = emu
        .savings(Policy::Perseus, Some(1.25))
        .unwrap()
        .savings_pct;
    let e = emu
        .savings(Policy::EnvPipe, Some(1.25))
        .unwrap()
        .savings_pct;
    assert!(
        p > e,
        "Perseus {p:.1}% must beat EnvPipe {e:.1}% under stragglers"
    );
}

#[test]
fn envpipe_respects_its_slowdown_budget() {
    let gpu = GpuSpec::a100_pcie();
    let model = zoo::gpt3_xl(4);
    let weights = model.fwd_latency_weights(&gpu);
    let partition = perseus::models::min_imbalance_partition(&weights, 4).unwrap();
    let stages = model.stage_workloads(&partition, &gpu).unwrap();
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 6)
        .build()
        .unwrap();
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).unwrap();
    let base = AllMaxFreq
        .plan(&ctx)
        .unwrap()
        .select(None)
        .energy_report(&ctx, None);
    let opts = EnvPipeOptions { tolerance: 0.01 };
    let ep = EnvPipe::new(opts)
        .plan(&ctx)
        .unwrap()
        .select(None)
        .energy_report(&ctx, None);
    assert!(ep.iter_time_s <= base.iter_time_s * 1.011);
    assert!(ep.total_j() < base.total_j());
}
