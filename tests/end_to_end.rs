//! End-to-end integration: the full Perseus workflow of paper §3.2, from
//! in-vivo profiling on a (noisy) simulated device through frontier
//! characterization, server deployment, straggler reaction, and client
//! frequency realization.

use perseus::core::{FrontierOptions, PlanContext};
use perseus::gpu::{GpuSpec, NoiseModel, SimGpu};
use perseus::models::{min_imbalance_partition, zoo};
use perseus::pipeline::{CompKind, OpKey, PipelineBuilder, ScheduleKind};
use perseus::profiler::{OnlineProfiler, ProfileDb};
use perseus::server::{ClientSession, JobSpec, PerseusServer};

#[test]
fn full_workflow_with_online_profiling() {
    let gpu = GpuSpec::a100_pcie();
    let model = zoo::bert_large(8);
    let n_stages = 4;
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, n_stages).expect("partition");
    let stages = model.stage_workloads(&partition, &gpu).expect("stages");
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, n_stages, 6)
        .build()
        .expect("pipe");

    // Step 1: the client profiles each computation in vivo, with
    // measurement noise, sweeping frequencies per §5.
    let mut profiles: ProfileDb<OpKey> = ProfileDb::new();
    let profiler = OnlineProfiler {
        reps: 4,
        ..Default::default()
    };
    for (s, sw) in stages.iter().enumerate() {
        let mut client = ClientSession::new(
            s,
            SimGpu::new(gpu.clone()).with_noise(NoiseModel::realistic(s as u64)),
        );
        let fwd = client.profile_sweep(&sw.fwd, &profiler);
        let bwd = client.profile_sweep(&sw.bwd, &profiler);
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Forward,
            },
            fwd.clone(),
        );
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Backward,
            },
            bwd,
        );
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Recompute,
            },
            fwd,
        );
    }

    // Steps 2+3: the server characterizes the frontier and deploys.
    let server = PerseusServer::new();
    server
        .register_job(JobSpec {
            name: "bert".into(),
            pipe: pipe.clone(),
            gpu: gpu.clone(),
            power_states: None,
        })
        .expect("register");
    let d0 = server
        .submit_profiles("bert", profiles, &FrontierOptions::default())
        .expect("characterize")
        .wait()
        .expect("deploy");
    let (t_min, t_star) = {
        let f = server.frontier("bert").expect("frontier");
        (f.t_min(), f.t_star())
    };
    assert!(t_min < t_star, "frontier must trade time for energy");
    assert_eq!(
        d0.planned_time_s, t_min,
        "initial deployment is the fastest point"
    );

    // Client realizes the deployed schedule in program order.
    let mut client = ClientSession::new(2, SimGpu::new(gpu.clone()));
    client.load_schedule(&pipe, &d0.schedule);
    let program: Vec<CompKind> = pipe
        .computations()
        .filter(|(_, c)| c.stage == 2)
        .map(|(_, c)| c.kind)
        .collect();
    for &k in &program {
        client.set_speed(k);
    }
    client.sync();
    assert!(client.gpu().lock().freq_set_count() > 0);

    // Steps 4+5: straggler arrives, schedule re-deploys within T'.
    let d1 = server
        .set_straggler("bert", 0, 0.0, 1.3)
        .expect("notify")
        .expect("deploy");
    assert!(d1.version > d0.version);
    assert!(d1.planned_time_s <= t_min * 1.3 + 1e-9);
    assert!(d1.planned_time_s > t_min, "slack should be used");
}

#[test]
fn noisy_profiles_still_produce_valid_schedules() {
    // Measurement noise must not break monotonicity of the realized
    // frontier or the feasibility of frequency assignments.
    let gpu = GpuSpec::a40();
    let model = zoo::t5_base(4);
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, 4).expect("partition");
    let stages = model.stage_workloads(&partition, &gpu).expect("stages");
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 4)
        .build()
        .expect("pipe");

    let mut profiles: ProfileDb<OpKey> = ProfileDb::new();
    let profiler = OnlineProfiler {
        reps: 5,
        ..Default::default()
    };
    for (s, sw) in stages.iter().enumerate() {
        let mut gpu_dev =
            SimGpu::new(gpu.clone()).with_noise(NoiseModel::realistic(100 + s as u64));
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Forward,
            },
            profiler.profile(&mut gpu_dev, &sw.fwd),
        );
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Backward,
            },
            profiler.profile(&mut gpu_dev, &sw.bwd),
        );
        profiles.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Recompute,
            },
            profiler.profile(&mut gpu_dev, &sw.fwd),
        );
    }
    let ctx = PlanContext::new(&pipe, &gpu, profiles).expect("ctx");
    let frontier =
        perseus::core::characterize(&ctx, &FrontierOptions::default()).expect("frontier");
    for pair in frontier.points().windows(2) {
        assert!(pair[0].planned_time_s < pair[1].planned_time_s);
        assert!(pair[0].planned_energy_j >= pair[1].planned_energy_j);
    }
    for p in frontier.points() {
        for id in pipe.dag.node_ids() {
            if let Some(f) = p.schedule.freq_of(id) {
                assert!(gpu.supports(f));
            }
        }
    }
}

#[test]
fn all_schedule_kinds_characterize() {
    let gpu = GpuSpec::a100_pcie();
    let model = zoo::gpt3_xl(4);
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, 2).expect("partition");
    let stages = model.stage_workloads(&partition, &gpu).expect("stages");
    for kind in [
        ScheduleKind::OneFOneB,
        ScheduleKind::GPipe,
        ScheduleKind::EarlyRecompute1F1B,
    ] {
        let pipe = PipelineBuilder::new(kind, 2, 4).build().expect("pipe");
        let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).expect("ctx");
        let frontier =
            perseus::core::characterize(&ctx, &FrontierOptions::default()).expect("frontier");
        assert!(
            frontier.t_min() < frontier.t_star(),
            "{kind}: any schedule with stage imbalance has intrinsic bloat (§4.4)"
        );
    }
}
