//! Integration tests for the `perseus` CLI binary.

use std::process::Command;

fn perseus(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_perseus"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn models_lists_the_zoo() {
    let (ok, stdout, _) = perseus(&["models"]);
    assert!(ok);
    for name in [
        "gpt3-175b",
        "bloom-3b",
        "t5-3b",
        "wide-resnet101-8",
        "llama2-70b",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn partition_prints_boundaries_and_ratio() {
    let (ok, stdout, _) = perseus(&["partition", "gpt3-xl", "--stages", "4"]);
    assert!(ok);
    assert!(stdout.contains("imbalance ratio"));
    assert!(stdout.contains("[0,"));
    assert!(stdout.contains("stage 3:"));
}

#[test]
fn frontier_reports_savings() {
    let (ok, stdout, _) = perseus(&[
        "frontier",
        "bert-base",
        "--stages",
        "2",
        "--microbatches",
        "4",
    ]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("T_min"));
    assert!(stdout.contains("intrinsic savings"));
}

#[test]
fn frontier_csv_is_parseable() {
    let (ok, stdout, _) = perseus(&[
        "frontier",
        "bert-base",
        "--stages",
        "2",
        "--microbatches",
        "4",
        "--csv",
    ]);
    assert!(ok);
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some("time_s,energy_j"));
    let mut n = 0;
    for l in lines {
        let mut parts = l.split(',');
        let t: f64 = parts.next().unwrap().parse().expect("time parses");
        let e: f64 = parts.next().unwrap().parse().expect("energy parses");
        assert!(t > 0.0 && e > 0.0);
        n += 1;
    }
    assert!(n > 5, "expected several frontier rows, got {n}");
}

#[test]
fn unknown_model_and_command_fail_cleanly() {
    let (ok, _, stderr) = perseus(&["partition", "gpt5-mega"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
    let (ok, _, stderr) = perseus(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = perseus(&["frontier", "bert-base", "--stages", "zebra"]);
    assert!(!ok);
    assert!(stderr.contains("expects an integer"));
}

#[test]
fn help_shows_usage() {
    let (ok, stdout, _) = perseus(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}
